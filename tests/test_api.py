"""Public API surface and error hierarchy."""

import numpy as np
import pytest

import repro
from repro.errors import (
    AllocationError,
    CapacityError,
    ConfigError,
    IsaError,
    KernelError,
    PlanError,
    ReproError,
    ScheduleError,
    ShapeError,
    SimulationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AllocationError, CapacityError, ConfigError, IsaError,
            KernelError, PlanError, ScheduleError, ShapeError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_library_failures_catchable_with_one_clause(self):
        with pytest.raises(ReproError):
            repro.ftimm_gemm(0, 1, 1)
        with pytest.raises(ReproError):
            repro.generate_kernel(6, 200, 64)


class TestFacade:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__

    def test_classify(self):
        assert repro.classify(2**20, 32, 32) == "type1"
        assert repro.classify(32, 32, 2**20) == "type2"
        assert repro.classify(20480, 32, 20480) == "type3"
        assert repro.classify(512, 512, 512) == "regular"

    def test_generate_kernel_cached(self):
        a = repro.generate_kernel(6, 64, 128)
        b = repro.generate_kernel(6, 64, 128)
        assert a is b

    def test_default_machine_frozen(self):
        machine = repro.default_machine()
        with pytest.raises(Exception):
            machine.cluster.n_cores = 4  # frozen dataclass

    def test_gemm_shape_exported(self):
        shape = repro.GemmShape(4, 5, 6)
        assert shape.flops == 240

    def test_end_to_end_through_facade(self):
        a = np.random.default_rng(0).standard_normal((256, 32)).astype(np.float32)
        b = np.random.default_rng(1).standard_normal((32, 16)).astype(np.float32)
        c = np.zeros((256, 16), np.float32)
        result = repro.gemm(256, 16, 32, a=a, b=b, c=c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-4)
        assert result.gflops > 0

    def test_autotune_through_facade(self):
        result = repro.autotune(
            repro.GemmShape(8192, 32, 256), repro.default_machine().cluster
        )
        assert result.improvement >= 0.999

    def test_multi_cluster_through_facade(self):
        result = repro.multi_cluster_gemm(2**18, 32, 32, n_clusters=2)
        assert result.n_clusters == 2

    def test_grouped_gemm_through_facade(self):
        result = repro.grouped_gemm(
            None, None, None, m_blocks=[128, 128], n=16, k=8,
            timing="analytic",
        )
        assert result.n_items == 2
