"""Assembly rendering and pipeline tables (Tables I-III structure)."""

from repro.isa.emitter import (
    fmac_occupancy,
    pipeline_grid,
    render_assembly,
    render_pipeline_table,
    render_schedule_listing,
)
from repro.isa.units import UnitClass


class TestPipelineGrid:
    def test_table1_analogue_fully_occupied(self, registry):
        """8x96 kernel: every FMAC slot of every cycle holds VFMULAS32 and
        the scalar chain issues once per cycle — the structure of Table I."""
        kern = registry.ftimm(8, 96, 512)
        grid = pipeline_grid(kern.body_schedules[0])
        for inst in range(3):
            cells = grid[(UnitClass.VFMAC, inst)]
            assert all(c == "VFMULAS32" for c in cells)
        assert all(c == "SLDH" for c in grid[(UnitClass.SLS, 0)])
        assert all(c == "SVBCAST" for c in grid[(UnitClass.SFMAC2, 0)])

    def test_table2_analogue_counts(self, registry):
        """6x64 kernel: 6 SLDW / SVBCAST2 / SBALE2H per 8-cycle window,
        2 VLDDW — Table II's shape."""
        kern = registry.ftimm(6, 64, 512)
        grid = pipeline_grid(kern.body_schedules[0])
        assert sum(c == "SLDW" for c in grid[(UnitClass.SLS, 0)]) == 6
        assert sum(c == "SVBCAST2" for c in grid[(UnitClass.SFMAC2, 0)]) == 6
        assert sum(c == "SBALE2H" for c in grid[(UnitClass.SIEU, 0)]) == 6
        vldw_count = sum(
            c == "VLDDW"
            for i in range(2)
            for c in grid[(UnitClass.VLS, i)]
        )
        assert vldw_count == 2

    def test_table3_analogue_broadcast_limited(self, registry):
        kern = registry.ftimm(6, 32, 512)
        occ = fmac_occupancy(kern.body_schedules[0])
        assert occ <= 2 / 3 + 1e-9

    def test_fmac_occupancy_of_full_kernel(self, registry):
        kern = registry.ftimm(12, 96, 512)
        assert fmac_occupancy(kern.body_schedules[0]) > 0.99


class TestRendering:
    def test_pipeline_table_has_unit_rows(self, registry):
        text = registry.ftimm(6, 64, 512).pipeline_table()
        assert "Scalar Load&Store1" in text
        assert "Vector FMAC3" in text
        assert "Control unit" in text

    def test_pipeline_table_has_ii_columns(self, registry):
        kern = registry.ftimm(8, 96, 512)
        header = kern.pipeline_table().splitlines()[1]
        assert str(kern.ii) in header

    def test_render_assembly_lines(self, registry):
        kern = registry.ftimm(4, 32, 16)
        text = render_assembly(kern.program.blocks[0].body)
        assert "VFMULAS32" in text
        assert text.count("\n") == len(kern.program.blocks[0].body) - 1

    def test_schedule_listing_sorted_by_cycle(self, registry):
        kern = registry.ftimm(6, 64, 512)
        listing = render_schedule_listing(kern.body_schedules[0])
        cycles = [
            int(line.split()[0][1:]) for line in listing.splitlines()
        ]
        assert cycles == sorted(cycles)

    def test_straightline_table_renders(self, registry):
        kern = registry.ftimm(6, 64, 512)
        text = render_pipeline_table(kern.setup_schedules[0], "setup")
        assert text.startswith("setup")
