"""Processor-sharing bandwidth channels: exact fluid-flow behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hw.bandwidth import LocalChannel, SharedChannel
from repro.hw.event_sim import Simulator


def run_flows(flows, bandwidth=100.0, cap=None):
    """flows: list of (start_time, nbytes); returns completion times."""
    sim = Simulator()
    ch = SharedChannel(sim, bandwidth, "t", per_flow_cap=cap)
    done = {}

    def proc(i, start, nbytes):
        yield sim.timeout(start)
        yield ch.transfer(nbytes, tag=str(i))
        done[i] = sim.now

    for i, (start, nbytes) in enumerate(flows):
        sim.process(proc(i, start, nbytes))
    sim.run()
    return done, ch


class TestSharedChannel:
    def test_single_flow_full_bandwidth(self):
        done, _ = run_flows([(0.0, 500.0)])
        assert done[0] == pytest.approx(5.0)

    def test_two_equal_flows_share_evenly(self):
        done, _ = run_flows([(0.0, 500.0), (0.0, 500.0)])
        assert done[0] == pytest.approx(10.0)
        assert done[1] == pytest.approx(10.0)

    def test_late_arrival_exact_fluid_solution(self):
        # a: 1000 B at t=0; b: 500 B at t=5.  a has 500 left at t=5,
        # both then get 50 B/s -> both finish at t=15.
        done, _ = run_flows([(0.0, 1000.0), (5.0, 500.0)])
        assert done[0] == pytest.approx(15.0)
        assert done[1] == pytest.approx(15.0)

    def test_small_flow_departs_then_big_speeds_up(self):
        # a: 1000 at t=0, b: 100 at t=0: b done at t=2 (50 B/s),
        # a then has 900 - ... a served 100 by t=2, 900 left at 100 B/s
        # -> done at t=11.
        done, _ = run_flows([(0.0, 1000.0), (0.0, 100.0)])
        assert done[1] == pytest.approx(2.0)
        assert done[0] == pytest.approx(11.0)

    def test_zero_byte_transfer_completes_immediately(self):
        done, _ = run_flows([(1.0, 0.0)])
        assert done[0] == pytest.approx(1.0)

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        ch = SharedChannel(sim, 10.0)
        with pytest.raises(SimulationError):
            ch.transfer(-1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            SharedChannel(Simulator(), 0.0)

    def test_stats_bytes_served(self):
        done, ch = run_flows([(0.0, 300.0), (0.0, 200.0)])
        assert ch.stats.bytes_served == pytest.approx(500.0)
        assert ch.stats.flows_completed == 2

    def test_mean_concurrency(self):
        _done, ch = run_flows([(0.0, 500.0), (0.0, 500.0)])
        assert ch.stats.mean_concurrency() == pytest.approx(2.0)


class TestPerFlowCap:
    def test_single_flow_capped(self):
        done, _ = run_flows([(0.0, 500.0)], bandwidth=100.0, cap=25.0)
        assert done[0] == pytest.approx(20.0)

    def test_cap_irrelevant_under_contention(self):
        # 5 flows of 100 at bw=100: fair share 20 < cap 25 -> share rules
        done, _ = run_flows([(0.0, 100.0)] * 5, bandwidth=100.0, cap=25.0)
        assert all(t == pytest.approx(5.0) for t in done.values())

    def test_cap_binds_for_few_flows(self):
        done, _ = run_flows([(0.0, 100.0)] * 2, bandwidth=100.0, cap=25.0)
        assert all(t == pytest.approx(4.0) for t in done.values())

    def test_invalid_cap_rejected(self):
        with pytest.raises(SimulationError):
            SharedChannel(Simulator(), 10.0, per_flow_cap=0.0)

    def test_current_rate_reflects_cap(self):
        sim = Simulator()
        ch = SharedChannel(sim, 100.0, per_flow_cap=30.0)
        assert ch.current_rate() == pytest.approx(30.0)


class TestLocalChannel:
    def test_fixed_rate_no_contention(self):
        sim = Simulator()
        ch = LocalChannel(sim, 50.0)
        done = []

        def proc():
            yield ch.transfer(100.0)
            done.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_negative_rejected(self):
        sim = Simulator()
        ch = LocalChannel(sim, 50.0)
        with pytest.raises(SimulationError):
            ch.transfer(-5)


@settings(max_examples=40, deadline=None)
@given(
    flows=st.lists(
        st.tuples(
            st.floats(0.0, 10.0, allow_nan=False),
            st.floats(1.0, 1000.0, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_conservation_and_work_bound(flows):
    """The channel conserves bytes and never beats the capacity bound.

    Completion of the whole batch cannot precede total_bytes / bandwidth
    after the first arrival, and every flow finishes.
    """
    bandwidth = 100.0
    done, ch = run_flows(flows, bandwidth=bandwidth)
    assert len(done) == len(flows)
    first = min(start for start, _b in flows)
    total = sum(b for _s, b in flows)
    finish = max(done.values())
    assert finish >= first + total / bandwidth - 1e-6
    assert ch.stats.bytes_served == pytest.approx(total, rel=1e-6)
    # no flow finishes before its own solo transfer time
    for i, (start, nbytes) in enumerate(flows):
        assert done[i] >= start + nbytes / bandwidth - 1e-6
