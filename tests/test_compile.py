"""Trace compiler: bit-identical to the reference interpreter.

The compiled path (:mod:`repro.isa.compile`) is only allowed to exist
because its semantics are *exactly* the interpreter's — products computed
per element, accumulator recurrences folded in sequential order
(``np.add.accumulate``), setup/teardown run on the interpreter.  These
tests sweep the kernel spec grid asserting byte equality between the two
execution modes, and pin the fallback and memoization behavior.
"""

import numpy as np
import pytest

from repro.errors import IsaError, KernelError
from repro.hw.config import default_machine
from repro.isa.compile import compile_block, compile_program, compiled_for
from repro.isa.interp import run_program
from repro.isa.instructions import Opcode
from repro.isa.program import LoopProgram
from repro.kernels.registry import registry_for
from repro.kernels.spec import KernelSpec
from repro.obs import collecting

CORE = default_machine().cluster.core

#: the equivalence grid: regular paper shapes, degenerate edges (single
#: row / column / k-step), non-lane-multiple widths, and narrow-n_a specs
#: whose k_u > 1 makes the teardown reduction tree non-trivial.
SPEC_GRID = [
    ("f32", 6, 96, 32),      # the paper's regular kernel
    ("f32", 8, 96, 512),     # long k: deep accumulation chains
    ("f32", 1, 96, 1),       # single row, single k step
    ("f32", 10, 1, 2),       # single column
    ("f32", 3, 17, 5),       # nothing lane-aligned
    ("f32", 6, 32, 64),      # narrow n_a: k_u > 1, teardown-heavy
    ("f32", 12, 64, 128),    # two vector registers per row
    ("f32", 14, 96, 7),      # max row unroll, k < k_u
    ("f64", 6, 48, 32),      # fp64 full width
    ("f64", 4, 16, 10),      # fp64 narrow: broadcast-bandwidth regime
]


def _operands(spec: KernelSpec, seed: int = 0):
    """Random padded tiles (A, B, C) as ``MicroKernel.apply_isa`` pads them."""
    rng = np.random.default_rng(seed)
    dt = spec.np_dtype
    a = rng.standard_normal((spec.m_s, spec.k_a)).astype(dt)
    b = rng.standard_normal((spec.k_a, spec.n_a)).astype(dt)
    c = rng.standard_normal((spec.m_s, spec.n_a)).astype(dt)
    return a, b, c


class TestEquivalence:
    @pytest.mark.parametrize(
        "dtype,m_s,n_a,k_a",
        SPEC_GRID,
        ids=[f"{d}-{m}x{n}x{k}" for d, m, n, k in SPEC_GRID],
    )
    def test_compiled_bit_identical_to_interp(self, dtype, m_s, n_a, k_a):
        spec = KernelSpec(m_s, n_a, k_a, dtype)
        kern = registry_for(CORE).ftimm(m_s, n_a, k_a, dtype)
        a, b, c = _operands(spec)
        c_interp = c.copy()
        c_compiled = c.copy()
        kern.apply_isa(a, b, c_interp, mode="interp")
        kern.apply_isa(a, b, c_compiled, mode="compiled")
        assert c_compiled.dtype == c_interp.dtype
        assert np.array_equal(c_compiled, c_interp)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_identical_across_inputs(self, seed):
        # same kernel, different data: equality is not an artifact of zeros
        spec = KernelSpec(8, 96, 128)
        kern = registry_for(CORE).ftimm(8, 96, 128)
        a, b, c = _operands(spec, seed=seed)
        c2 = c.copy()
        kern.apply_isa(a, b, c, mode="interp")
        kern.apply_isa(a, b, c2, mode="compiled")
        assert np.array_equal(c, c2)

    def test_compiled_is_also_correct(self):
        # not just self-consistent: both paths compute C += A @ B
        kern = registry_for(CORE).ftimm(6, 96, 64)
        spec = KernelSpec(6, 96, 64)
        a, b, c = _operands(spec)
        ref = c.astype(np.float64) + a.astype(np.float64) @ b.astype(np.float64)
        kern.apply_isa(a, b, c, mode="compiled")
        np.testing.assert_allclose(c, ref, rtol=1e-4, atol=1e-4)

    def test_machine_state_identical_after_run(self):
        # the compiled path must leave registers at last-iteration values,
        # so a later block observing them cannot diverge
        kern = registry_for(CORE).ftimm(6, 32, 16)
        spec = KernelSpec(6, 32, 16)
        a, b, c = _operands(spec)

        def padded():
            dt = spec.np_dtype
            a_p = np.zeros((spec.m_s, kern.compute_k), dtype=dt)
            a_p[:, : spec.k_a] = a
            b_p = np.zeros((kern.compute_k, kern.compute_n), dtype=dt)
            b_p[: spec.k_a, : spec.n_a] = b
            c_p = np.zeros((spec.m_s, kern.compute_n), dtype=dt)
            c_p[:, : spec.n_a] = c
            return {"A": a_p, "B": b_p, "C": c_p}

        st_i = run_program(kern.program, padded(), mode="interp")
        st_c = run_program(kern.program, padded(), mode="compiled")
        assert st_c.instructions_retired == st_i.instructions_retired
        assert set(st_c.vregs) == set(st_i.vregs)
        for name, val in st_i.vregs.items():
            assert np.array_equal(st_c.vregs[name], val), name


class TestCompilerStructure:
    def test_generated_bodies_all_compile(self):
        # every body the generator emits must be in the compiled subset;
        # a fallback here silently costs the whole speedup
        for dtype, m_s, n_a, k_a in SPEC_GRID:
            kern = registry_for(CORE).ftimm(m_s, n_a, k_a, dtype)
            compiled = compiled_for(kern.program)
            assert compiled.n_compiled == len(kern.program.blocks)

    def test_compiled_for_memoizes(self):
        kern = registry_for(CORE).ftimm(6, 96, 32)
        assert compiled_for(kern.program) is compiled_for(kern.program)

    def test_body_store_falls_back(self):
        # stores in a loop body are outside the compiled subset: reuse the
        # real teardown's store instructions as a synthetic body
        kern = registry_for(CORE).ftimm(6, 96, 32)
        block = kern.program.blocks[0]
        stores = [
            i for i in block.teardown
            if i.op in (Opcode.VSTW, Opcode.VSTDW)
        ]
        assert stores  # the teardown writes C back
        fake = LoopProgram(setup=[], body=stores, trip=2, teardown=[])
        assert compile_block(fake) is None

    def test_compile_counters_published(self):
        kern = registry_for(CORE).ftimm(8, 96, 64)
        with collecting() as reg:
            compile_program(kern.program)
        compiled = reg.counter("isa/compile/blocks_compiled").value
        assert compiled == len(kern.program.blocks)

    def test_exec_counters_published(self):
        spec = KernelSpec(6, 96, 32)
        kern = registry_for(CORE).ftimm(6, 96, 32)
        a, b, c = _operands(spec)
        with collecting() as reg:
            kern.apply_isa(a, b, c, mode="compiled")
        assert reg.counter("isa/exec/compiled_blocks").value >= 1


class TestModeSelection:
    def test_run_program_rejects_unknown_mode(self):
        kern = registry_for(CORE).ftimm(6, 96, 32)
        with pytest.raises(IsaError):
            run_program(kern.program, {}, mode="bogus")

    def test_apply_exec_rejects_unknown_mode(self):
        spec = KernelSpec(6, 96, 32)
        kern = registry_for(CORE).ftimm(6, 96, 32)
        a, b, c = _operands(spec)
        with pytest.raises(KernelError):
            kern.apply_exec(a, b, c, mode="fast")

    def test_apply_exec_modes_agree(self):
        spec = KernelSpec(6, 96, 32)
        kern = registry_for(CORE).ftimm(6, 96, 32)
        a, b, c = _operands(spec)
        c_np, c_isa = c.copy(), c.copy()
        kern.apply_exec(a, b, c_np, mode="numpy")
        kern.apply_exec(a, b, c_isa, mode="compiled")
        # numpy path uses BLAS order: close, not bit-identical
        np.testing.assert_allclose(c_isa, c_np, rtol=1e-4, atol=1e-4)
