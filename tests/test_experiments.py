"""Experiment drivers: the paper's claims must hold on this model.

Fig. 3 and the pipeline tables are cheap and asserted in full.  The sweep
experiments (Figs. 4-7) run on reduced sweeps here to keep the suite fast;
the full sweeps run in the benchmark harness and ``run_all``.
"""

import pytest

from repro.experiments import fig3, fig4, fig5, fig6, fig7, tables123
from repro.experiments.common import run_pair


def assert_claims_hold(results):
    for result in results:
        for claim in result.claims:
            assert claim.holds, f"{result.exp_id}: {claim.name}: {claim.measured}"


class TestTables123:
    def test_all_claims_hold(self):
        assert_claims_hold(tables123.run())

    def test_pipeline_tables_rendered(self):
        results = tables123.run()
        for result in results:
            assert any("VFMULAS32" in note for note in result.notes)


class TestFig3:
    @pytest.fixture(scope="class")
    def results(self):
        return fig3.run()

    def test_six_panels(self, results):
        assert [r.exp_id for r in results] == [
            "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f",
        ]

    def test_all_claims_hold(self, results):
        assert_claims_hold(results)

    def test_peaks_close_to_paper(self, results):
        paper = {"fig3a": 98.2, "fig3b": 96.4, "fig3c": 63.0,
                 "fig3d": 77.4, "fig3e": 65.4, "fig3f": 46.6}
        for result in results:
            measured = result.series[0].peak
            assert measured == pytest.approx(paper[result.exp_id], abs=8.0)

    def test_deep_k_beats_shallow_k(self, results):
        by_id = {r.exp_id: r.series[0].peak for r in results}
        assert by_id["fig3a"] > by_id["fig3d"]
        assert by_id["fig3b"] > by_id["fig3e"]
        assert by_id["fig3c"] > by_id["fig3f"]


class TestFig4Reduced:
    def test_claims_on_reduced_sweep(self):
        results = fig4.run(n_sweep=[32, 64, 80])
        for result in results:
            for claim in result.claims:
                if "every N" in claim.name or "N=80" in claim.name:
                    assert claim.holds, f"{result.exp_id}: {claim.name}"

    def test_single_core_speedup_at_type3_point(self):
        ft, tg = run_pair(20480, 32, 20480, cores=1, timing="analytic")
        assert 1.4 <= ft.gflops / tg.gflops <= 2.8  # paper: 2.0x


class TestFig5Points:
    """Representative points of each panel instead of full sweeps."""

    def test_type1_multicore_win(self):
        ft, tg = run_pair(65536, 32, 32, timing="analytic")
        assert ft.gflops / tg.gflops > 1.5

    def test_type2_multicore_win(self):
        ft, tg = run_pair(32, 32, 65536, timing="analytic")
        assert ft.gflops / tg.gflops > 2.0

    def test_type3_multicore_win_is_largest(self):
        s1 = (lambda p: p[0].gflops / p[1].gflops)(
            run_pair(65536, 32, 32, timing="analytic")
        )
        s3 = (lambda p: p[0].gflops / p[1].gflops)(
            run_pair(20480, 32, 20480, timing="analytic")
        )
        assert s3 > s1  # the paper's ordering: type 3 benefits most

    def test_below_roofline(self):
        from repro.baselines.roofline import roofline
        from repro.core.shapes import GemmShape
        from repro.hw.config import default_machine

        cluster = default_machine().cluster
        ft, _ = run_pair(20480, 32, 20480, timing="analytic")
        ceiling = roofline(GemmShape(20480, 32, 20480), cluster).max_gflops
        assert ft.gflops < ceiling


class TestFig6:
    @pytest.fixture(scope="class")
    def results(self):
        return fig6.run()

    def test_all_claims_hold(self, results):
        assert_claims_hold(results)

    def test_four_series(self, results):
        assert len(results[0].series) == 4

    def test_speedup_normalized_to_one_core(self, results):
        for series in results[0].series:
            assert series.y[0] == pytest.approx(1.0)


class TestFig7:
    @pytest.fixture(scope="class")
    def results(self):
        return fig7.run()

    def test_all_claims_hold(self, results):
        assert_claims_hold(results)

    def test_efficiency_units_are_percent(self, results):
        for result in results:
            for series in result.series:
                assert all(0 <= y <= 100 for y in series.y)
