"""Executors: functional replay, DES timing, analytic composition, and the
cross-validation between the two timing paths."""

import pytest

from repro.core.blocking import KPlan, MPlan, TgemmPlan, adjust_k_plan, adjust_m_plan
from repro.core.parallel_k import build_parallel_k
from repro.core.parallel_m import build_parallel_m
from repro.core.shapes import GemmShape
from repro.core.tgemm import build_tgemm
from repro.executor.analytic import (
    analytic_parallel_k,
    analytic_parallel_m,
    analytic_tgemm,
    busiest_core_chunks,
    pingpong_seq,
    pingpong_uniform,
)
from repro.executor.functional import run_functional
from repro.executor.timed import run_timed

from conftest import make_operands


class TestFunctionalReport:
    def test_counts(self, cluster, registry):
        shape = GemmShape(100, 32, 70)
        data, _ref = make_operands(shape)
        ex = build_parallel_m(shape, cluster, data=data, registry=registry)
        rep = run_functional(ex)
        assert rep.ops_executed == ex.n_ops
        assert rep.kernel_ops > 0 and rep.dma_ops > 0
        assert rep.flops == shape.flops
        assert rep.bytes_moved == ex.total_dma_bytes


class TestTimedExecutor:
    def test_result_fields(self, cluster, registry):
        ex = build_parallel_m(GemmShape(1000, 32, 64), cluster, registry=registry)
        r = run_timed(ex)
        assert r.seconds > 0
        assert r.gflops > 0
        assert 0 < r.efficiency < 1
        assert r.events_processed > 0
        assert r.dma_bytes == ex.total_dma_bytes
        assert len(r.core_busy) == cluster.n_cores

    def test_pingpong_overlap_beats_serial_sum(self, cluster, registry):
        """Total time must be less than the serial sum of all DMA and
        compute durations — proof the DES actually overlaps phases."""
        ex = build_parallel_m(GemmShape(2000, 96, 864), cluster, registry=registry)
        r = run_timed(ex)
        serial_compute = max(ex.kernel_cycles_by_core) / cluster.core.clock_hz
        # per-core serial estimate: its compute plus its DMA at full port
        serial = serial_compute + ex.total_dma_bytes / cluster.ddr_bandwidth
        assert r.seconds < serial

    def test_more_cores_never_slower_m_parallel(self, cluster, registry):
        shape = GemmShape(4096, 32, 128)
        times = []
        for n in (1, 2, 4, 8):
            sub = cluster.with_cores(n)
            plan = adjust_m_plan(MPlan(), shape, sub)
            ex = build_parallel_m(shape, sub, plan=plan, adjust=False, registry=registry)
            times.append(run_timed(ex).seconds)
        assert times[-1] < times[0]
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.05

    def test_ddr_contention_visible(self, cluster, registry):
        ex = build_parallel_m(GemmShape(8000, 32, 32), cluster, registry=registry)
        r = run_timed(ex)
        assert r.ddr_mean_concurrency > 1.5  # many engines pull at once

    def test_deterministic(self, cluster, registry):
        ex1 = build_parallel_k(GemmShape(32, 32, 8192), cluster, registry=registry)
        ex2 = build_parallel_k(GemmShape(32, 32, 8192), cluster, registry=registry)
        assert run_timed(ex1).seconds == run_timed(ex2).seconds


class TestPingPongHelpers:
    def test_uniform_closed_form(self):
        assert pingpong_uniform(1, 2.0, 3.0) == 5.0
        assert pingpong_uniform(3, 2.0, 3.0) == 2.0 + 3.0 + 2 * 3.0
        assert pingpong_uniform(0, 2.0, 3.0) == 0.0

    def test_seq_matches_uniform(self):
        pairs = [(2.0, 3.0)] * 5
        assert pingpong_seq(pairs) == pytest.approx(pingpong_uniform(5, 2.0, 3.0))

    def test_seq_load_bound(self):
        pairs = [(5.0, 1.0)] * 4
        assert pingpong_seq(pairs) == pytest.approx(4 * 5.0 + 1.0)

    def test_seq_heterogeneous(self):
        # load 1 at t=0-1; compute 1 at 1-11; load 2 at 1-2 (overlapped);
        # compute 2 at 11-12
        assert pingpong_seq([(1.0, 10.0), (1.0, 1.0)]) == pytest.approx(12.0)

    def test_empty(self):
        assert pingpong_seq([]) == 0.0


class TestBusiestCoreChunks:
    def test_even_division(self):
        assert busiest_core_chunks(80, 10, 8) == [10]

    def test_remainder_chunk_counted(self):
        chunks = busiest_core_chunks(85, 10, 8)
        assert sum(chunks) >= 10  # core 0 holds a full chunk + maybe more

    def test_exhaustive_against_bruteforce(self):
        import math
        for total, block, p in [(85, 10, 8), (100, 7, 3), (5, 10, 8), (64, 8, 8), (63, 8, 4)]:
            n_chunks = math.ceil(total / block)
            per_core = {c: [] for c in range(p)}
            for idx in range(n_chunks):
                size = block if (idx < n_chunks - 1 or total % block == 0) else total % block
                per_core[idx % p].append(size)
            best = max(per_core.values(), key=lambda ch: (sum(ch), len(ch)))
            assert busiest_core_chunks(total, block, p) == best

    def test_zero_total(self):
        assert busiest_core_chunks(0, 10, 8) == []


class TestAnalyticVsDes:
    """The two timing paths must agree on their overlapping domain.

    Tolerance 20%: the analytic model approximates contention as a steady
    even split and serializes phase boundaries.
    """

    @pytest.mark.parametrize(
        "m,n,k", [(20000, 32, 32), (8192, 96, 512), (20480, 32, 2048)]
    )
    def test_m_parallel(self, cluster, registry, m, n, k):
        shape = GemmShape(m, n, k)
        plan = adjust_m_plan(MPlan(), shape, cluster)
        des = run_timed(
            build_parallel_m(shape, cluster, plan=plan, adjust=False, registry=registry)
        )
        ana = analytic_parallel_m(shape, cluster, plan, registry)
        assert ana.seconds == pytest.approx(des.seconds, rel=0.20)

    @pytest.mark.parametrize("m,n,k", [(32, 32, 65536), (64, 64, 20480)])
    def test_k_parallel(self, cluster, registry, m, n, k):
        shape = GemmShape(m, n, k)
        plan = adjust_k_plan(KPlan(), shape, cluster)
        des = run_timed(
            build_parallel_k(shape, cluster, plan=plan, adjust=False, registry=registry)
        )
        ana = analytic_parallel_k(shape, cluster, plan, registry)
        assert ana.seconds == pytest.approx(des.seconds, rel=0.20)

    @pytest.mark.parametrize("m,n,k", [(4096, 32, 2048), (2048, 96, 1024)])
    def test_tgemm(self, cluster, registry, m, n, k):
        shape = GemmShape(m, n, k)
        plan = TgemmPlan()
        des = run_timed(build_tgemm(shape, cluster, plan=plan, registry=registry))
        ana = analytic_tgemm(shape, cluster, plan, registry)
        assert ana.seconds == pytest.approx(des.seconds, rel=0.20)

    def test_analytic_monotone_in_problem_size(self, cluster, registry):
        plan = adjust_m_plan(MPlan(), GemmShape(2**20, 32, 32), cluster)
        t1 = analytic_parallel_m(GemmShape(2**18, 32, 32), cluster, plan, registry)
        t2 = analytic_parallel_m(GemmShape(2**20, 32, 32), cluster, plan, registry)
        assert t2.seconds > t1.seconds
