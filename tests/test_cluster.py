"""Cluster assemblies: spaces, cores, barrier, reduction model."""

import pytest

from repro.errors import CapacityError, ConfigError
from repro.hw.cluster import ClusterSim, ClusterSpaces, reduction_seconds
from repro.hw.config import ClusterConfig
from repro.hw.memory import MemKind


class TestClusterSpaces:
    def test_per_core_spaces_exist(self, cluster):
        spaces = ClusterSpaces(cluster)
        assert len(spaces.am) == cluster.n_cores
        assert len(spaces.sm) == cluster.n_cores
        assert spaces.gsm.capacity == cluster.gsm_bytes

    def test_space_lookup(self, cluster):
        spaces = ClusterSpaces(cluster)
        assert spaces.space(MemKind.DDR) is spaces.ddr
        assert spaces.space(MemKind.GSM) is spaces.gsm
        assert spaces.space(MemKind.AM, 3) is spaces.am[3]
        assert spaces.space(MemKind.SM, 7) is spaces.sm[7]

    def test_space_lookup_bad_core(self, cluster):
        spaces = ClusterSpaces(cluster)
        with pytest.raises(ConfigError):
            spaces.space(MemKind.AM, cluster.n_cores)

    def test_am_capacity_enforced(self, cluster):
        spaces = ClusterSpaces(cluster)
        with pytest.raises(CapacityError):
            spaces.am[0].alloc((1024, 1024))  # 4 MiB > 768 KiB

    def test_reset_restores_all(self, cluster):
        spaces = ClusterSpaces(cluster)
        spaces.gsm.alloc((128, 128))
        spaces.am[0].alloc((16, 16))
        spaces.reset()
        assert spaces.gsm.used == 0
        assert spaces.am[0].used == 0

    def test_peak_report_keys(self, cluster):
        spaces = ClusterSpaces(cluster)
        report = spaces.peak_report()
        assert "gsm" in report
        assert f"am{cluster.n_cores - 1}" in report


class TestClusterSim:
    def test_ddr_channel_derated(self, cluster):
        sim = ClusterSim(cluster)
        expected = cluster.ddr_bandwidth * cluster.dma.ddr_efficiency
        assert sim.ddr_channel.bandwidth == pytest.approx(expected)

    def test_ddr_per_flow_cap_wired(self, cluster):
        sim = ClusterSim(cluster)
        assert sim.ddr_channel.per_flow_cap == pytest.approx(
            cluster.dma.channel_bandwidth
        )

    def test_kernel_occupies_compute(self, cluster):
        cs = ClusterSim(cluster)
        cs.cores[0].run_kernel(1800)  # 1 us at 1.8 GHz
        cs.sim.run()
        assert cs.sim.now == pytest.approx(1e-6)
        assert cs.cores[0].compute_cycles == 1800

    def test_kernels_serialize_on_one_core(self, cluster):
        cs = ClusterSim(cluster)
        cs.cores[0].run_kernel(1800)
        cs.cores[0].run_kernel(1800)
        cs.sim.run()
        assert cs.sim.now == pytest.approx(2e-6)

    def test_kernels_parallel_across_cores(self, cluster):
        cs = ClusterSim(cluster)
        cs.cores[0].run_kernel(1800)
        cs.cores[1].run_kernel(1800)
        cs.sim.run()
        assert cs.sim.now == pytest.approx(1e-6)

    def test_barrier_waits_for_last(self, cluster):
        cs = ClusterSim(cluster)
        arrivals = [cs.sim.timeout(t) for t in (1e-6, 3e-6)]
        done = cs.barrier(arrivals, "t")
        cs.sim.run()
        extra = cluster.barrier_cycles / cluster.core.clock_hz
        assert done.triggered
        assert cs.sim.now == pytest.approx(3e-6 + extra)


class TestReduction:
    def test_single_core_is_just_writeback(self, cluster):
        nbytes = 4096
        assert reduction_seconds(cluster, nbytes, 1) == pytest.approx(
            nbytes / cluster.ddr_bandwidth
        )

    def test_cost_grows_with_cores(self, cluster):
        nbytes = 128 * 1024
        costs = [reduction_seconds(cluster, nbytes, n) for n in (2, 4, 8)]
        assert costs[0] < costs[1] < costs[2]

    def test_cost_grows_with_bytes(self, cluster):
        assert reduction_seconds(cluster, 1024, 8) < reduction_seconds(
            cluster, 1024 * 1024, 8
        )

    def test_barrier_floor(self, cluster):
        floor = cluster.barrier_cycles / cluster.core.clock_hz
        assert reduction_seconds(cluster, 64, 8) > floor
