"""Every example script must run cleanly — examples are part of the API
contract and rot silently otherwise.  Run as subprocesses with reduced
problem sizes where the script allows none, asserting on key output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "max |C - A@B|" in out
        assert "speedup" in out
        assert "VFMULAS32" in out  # the pipeline table printed

    def test_kmeans(self):
        out = run_example("kmeans_clustering.py")
        assert "labels via NumPy == labels via simulated ftIMM: True" in out
        assert "faster" in out

    def test_cnn_im2col(self):
        out = run_example("cnn_im2col.py")
        assert "VGG-16" in out and "ResNet-18" in out
        assert "conv1_1" in out
        assert float(out.split("= ")[1].split()[0]) < 1e-3  # conv error line

    def test_autotuning_tour(self):
        out = run_example("autotuning_tour.py")
        assert "strategy : m-parallel" in out
        assert "strategy : k-parallel" in out
        assert "summary:" in out

    def test_fem_batched(self):
        out = run_example("fem_batched.py")
        assert "max error 0.00e+00" in out
        assert "p1_tet_interp" in out

    def test_whole_chip_tour(self):
        out = run_example("whole_chip_tour.py")
        assert "1 DSP core" in out
        assert "4 clusters" in out

    def test_every_example_file_is_tested(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py", "kmeans_clustering.py", "cnn_im2col.py",
            "autotuning_tour.py", "fem_batched.py", "whole_chip_tour.py",
        }
        assert scripts == tested, f"untested examples: {scripts - tested}"
