"""Machine configuration: paper values, derived peaks, validation."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.hw.config import (
    ClusterConfig,
    CpuConfig,
    DmaConfig,
    DspCoreConfig,
    FT_M7032,
    LatencyConfig,
    MachineConfig,
    default_machine,
)


class TestPaperValues:
    def test_core_peak_is_345_6_gflops(self, core):
        assert core.peak_flops == pytest.approx(345.6e9)

    def test_cluster_peak_with_8_cores(self, cluster):
        assert cluster.peak_flops == pytest.approx(8 * 345.6e9)

    def test_cpu_peak_is_281_6_gflops(self, machine):
        assert machine.cpu.peak_flops == pytest.approx(281.6e9)

    def test_ddr_bandwidth_is_42_6_gbps(self, cluster):
        assert cluster.ddr_bandwidth == pytest.approx(42.6e9)

    def test_gsm_is_6_mib(self, cluster):
        assert cluster.gsm_bytes == 6 * 1024 * 1024

    def test_am_is_768_kib(self, core):
        assert core.am_bytes == 768 * 1024

    def test_sm_is_64_kib(self, core):
        assert core.sm_bytes == 64 * 1024

    def test_simd_width_32_fp32(self, core):
        assert core.simd_lanes == 32

    def test_three_fmac_pipes(self, core):
        assert core.n_vector_fmac == 3

    def test_am_streams_512_bytes_per_cycle(self, core):
        assert core.am_bytes_per_cycle == 512

    def test_broadcast_limit_two_scalars(self, core):
        assert core.broadcast_scalars_per_cycle == 2

    def test_clock_1_8_ghz(self, core):
        assert core.clock_hz == pytest.approx(1.8e9)

    def test_cpu_has_16_cores(self, machine):
        assert machine.cpu.n_cores == 16

    def test_four_clusters_on_chip(self, machine):
        assert machine.n_clusters == 4


class TestDerived:
    def test_fma_lanes_per_cycle(self, core):
        assert core.fma_lanes_per_cycle == 96

    def test_usable_vector_regs(self, core):
        assert core.usable_vector_regs == 64 - core.reserved_vector_regs

    def test_default_machine_is_validated_singleton(self):
        assert default_machine() is FT_M7032


class TestWithCores:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_with_cores_scales_peak(self, cluster, n):
        sub = cluster.with_cores(n)
        assert sub.n_cores == n
        assert sub.peak_flops == pytest.approx(n * cluster.core.peak_flops)

    def test_with_cores_keeps_core_config_identity(self, cluster):
        assert cluster.with_cores(4).core is cluster.core

    @pytest.mark.parametrize("n", [0, 9, -1])
    def test_with_cores_rejects_out_of_range(self, cluster, n):
        with pytest.raises(ConfigError):
            cluster.with_cores(n)


class TestValidation:
    def test_negative_clock_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DspCoreConfig(), clock_hz=-1).validate()

    def test_zero_simd_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DspCoreConfig(), simd_lanes=0).validate()

    def test_too_few_registers_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(
                DspCoreConfig(), n_vector_regs=8, reserved_vector_regs=4
            ).validate()

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(LatencyConfig(), t_fma=0).validate()

    def test_dma_negative_startup_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DmaConfig(), startup_cycles=-1).validate()

    def test_dma_zero_channels_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DmaConfig(), channels_per_core=0).validate()

    def test_dma_bad_ddr_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DmaConfig(), ddr_efficiency=1.5).validate()
        with pytest.raises(ConfigError):
            dataclasses.replace(DmaConfig(), ddr_efficiency=0.0).validate()

    def test_dma_zero_channel_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DmaConfig(), channel_bandwidth=0).validate()

    def test_cluster_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(ClusterConfig(), n_cores=0).validate()

    def test_cluster_zero_gsm_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(ClusterConfig(), gsm_bytes=0).validate()

    def test_cpu_bad_kernel_fraction_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(CpuConfig(), kernel_peak_fraction=0).validate()

    def test_machine_zero_clusters_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(MachineConfig(), n_clusters=0).validate()

    def test_machine_validate_returns_self(self):
        mc = MachineConfig()
        assert mc.validate() is mc
