"""The op-stream IR: builder dependency tracking and plan validation."""

import pytest

from repro.core.plans import GemmExecution, Op, OpKind, OpStreamBuilder
from repro.core.shapes import GemmShape
from repro.errors import PlanError
from repro.hw.dma import DmaDescriptor
from repro.hw.memory import MemKind


def desc(tag="x"):
    return DmaDescriptor(MemKind.DDR, MemKind.AM, rows=4, row_bytes=64, tag=tag)


class TestBuilder:
    def test_first_fill_has_no_deps(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        idx = b.dma(0, desc(), buffer="B_a", slot=0)
        assert b.core_ops[0][idx].deps == ()

    def test_kernel_depends_on_producer(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        fill = b.dma(0, desc(), buffer="B_a", slot=0)
        kern = b.kernel(0, 100, 200, reads=(("B_a", 0),))
        assert fill in b.core_ops[0][kern].deps

    def test_refill_depends_on_last_consumer(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        b.dma(0, desc(), buffer="B_a", slot=0)
        kern = b.kernel(0, 100, 200, reads=(("B_a", 0),))
        refill = b.dma(0, desc(), buffer="B_a", slot=0)
        assert kern in b.core_ops[0][refill].deps

    def test_slots_are_independent(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        b.dma(0, desc(), buffer="B_a", slot=0)
        b.kernel(0, 100, 200, reads=(("B_a", 0),))
        refill_other = b.dma(0, desc(), buffer="B_a", slot=1)
        assert b.core_ops[0][refill_other].deps == ()

    def test_cores_are_independent(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        b.dma(0, desc(), buffer="B_a", slot=0)
        b.kernel(0, 100, 200, reads=(("B_a", 0),))
        other = b.dma(1, desc(), buffer="B_a", slot=0)
        assert b.core_ops[1][other].deps == ()

    def test_explicit_consume(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        b.dma(0, desc(), buffer="C_a", slot=0)
        out = b.dma(0, desc("out"))
        b.consume(0, "C_a", 0, out)
        refill = b.dma(0, desc(), buffer="C_a", slot=0)
        assert out in b.core_ops[0][refill].deps

    def test_sync_appears_on_every_core(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        sid = b.sync(tag="t")
        for ops in b.core_ops:
            assert len(ops) == 1
            assert ops[0].kind is OpKind.SYNC and ops[0].sync_id == sid

    def test_seq_strictly_increasing(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        b.dma(0, desc())
        b.kernel(1, 10, 10)
        b.sync()
        seqs = [op.seq for ops in b.core_ops for op in ops]
        assert len(set(seqs)) == len(seqs)

    def test_finish_produces_valid_execution(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        b.dma(0, desc(), buffer="B_a", slot=0)
        b.kernel(0, 10, 20, reads=(("B_a", 0),))
        b.sync()
        ex = b.finish(GemmShape(4, 4, 4), "test", cluster)
        assert ex.n_ops == 2 + cluster.n_cores
        assert ex.n_syncs == 1


class TestValidation:
    def test_kernel_with_zero_cycles_rejected(self, cluster):
        op = Op(OpKind.KERNEL, 0, cycles=0)
        with pytest.raises(PlanError):
            op.validate(0)

    def test_dma_without_descriptor_rejected(self):
        with pytest.raises(PlanError):
            Op(OpKind.DMA, 0).validate(0)

    def test_forward_dep_rejected(self):
        op = Op(OpKind.KERNEL, 0, cycles=1, deps=(5,))
        with pytest.raises(PlanError):
            op.validate(3)

    def test_missing_sync_on_a_core_rejected(self, cluster):
        ops = [[] for _ in range(cluster.n_cores)]
        ops[0].append(Op(OpKind.SYNC, 0, sync_id=0))
        ex = GemmExecution(GemmShape(1, 1, 1), "t", cluster, ops, n_syncs=1)
        with pytest.raises(PlanError):
            ex.validate()

    def test_wrong_stream_count_rejected(self, cluster):
        ex = GemmExecution(GemmShape(1, 1, 1), "t", cluster, [[]], n_syncs=0)
        with pytest.raises(PlanError):
            ex.validate()


class TestAggregates:
    def test_totals(self, cluster):
        b = OpStreamBuilder(cluster.n_cores)
        b.dma(0, desc())
        b.dma(1, desc())
        b.kernel(0, 50, 1000)
        b.kernel(2, 70, 2000)
        ex = b.finish(GemmShape(4, 4, 4), "t", cluster)
        assert ex.total_flops == 3000
        assert ex.total_dma_bytes == 2 * 4 * 64
        cycles = ex.kernel_cycles_by_core
        assert cycles[0] == 50 and cycles[2] == 70


class TestDescribe:
    def test_describe_summary(self, cluster, registry):
        from repro.core.parallel_m import build_parallel_m

        ex = build_parallel_m(GemmShape(1000, 32, 128), cluster, registry=registry)
        text = ex.describe()
        assert "ftimm-m for 1000x32x128" in text
        assert "core0:" in text and f"core{cluster.n_cores - 1}:" in text
        assert "ddr->sm" in text
        assert "on-chip peaks" in text

    def test_describe_kernel_histogram(self, cluster, registry):
        from repro.core.parallel_k import build_parallel_k

        ex = build_parallel_k(GemmShape(32, 32, 4096), cluster, registry=registry)
        text = ex.describe()
        assert " x " in text  # histogram entries
        assert "syncs" in text
