"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_shape_parsing(self):
        args = build_parser().parse_args(["classify", "128x32x64"])
        assert args.shape == (128, 32, 64)

    def test_star_separator_accepted(self):
        args = build_parser().parse_args(["classify", "128*32*64"])
        assert args.shape == (128, 32, 64)

    def test_bad_shape_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "128x32"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestClassify:
    def test_classify_output(self, capsys):
        assert main(["classify", "65536x32x32"]) == 0
        out = capsys.readouterr().out
        assert "type1" in out
        assert "AI" in out

    def test_invalid_dims_reported_cleanly(self, capsys):
        assert main(["classify", "0x32x32"]) == 1
        assert "error" in capsys.readouterr().err


class TestMachine:
    def test_machine_summary(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "345.6 GFLOPS" in out
        assert "42.6 GB/s" in out


class TestKernel:
    def test_kernel_summary(self, capsys):
        assert main(["kernel", "6", "64", "128"]) == 0
        out = capsys.readouterr().out
        assert "II=8" in out
        assert "registers" in out

    def test_kernel_table(self, capsys):
        assert main(["kernel", "8", "96", "128", "--table"]) == 0
        assert "VFMULAS32" in capsys.readouterr().out

    def test_kernel_asm(self, capsys):
        assert main(["kernel", "4", "32", "16", "--asm"]) == 0
        out = capsys.readouterr().out
        assert "setup:" in out and "teardown:" in out
        assert "SVBCAST" in out

    def test_tgemm_kernel(self, capsys):
        assert main(["kernel", "6", "32", "128", "--tgemm"]) == 0
        assert "tgemm" in capsys.readouterr().out

    def test_invalid_kernel_reported(self, capsys):
        assert main(["kernel", "6", "200", "128"]) == 1
        assert "error" in capsys.readouterr().err


class TestGemm:
    def test_gemm_both_impls(self, capsys):
        assert main(["gemm", "2048x32x128", "--timing", "analytic"]) == 0
        out = capsys.readouterr().out
        assert "ftimm" in out and "tgemm" in out
        assert "roofline" in out

    def test_gemm_verify(self, capsys):
        assert main([
            "gemm", "512x32x64", "--verify", "--timing", "none",
            "--impl", "ftimm",
        ]) == 0
        out = capsys.readouterr().out
        assert "verify [ftimm]" in out
        err = float(out.split("= ")[1].split()[0])
        assert err < 1e-2

    def test_gemm_cores_and_strategy(self, capsys):
        assert main([
            "gemm", "20480x32x2048", "--cores", "4", "--impl", "ftimm",
            "--timing", "analytic", "--force-strategy", "k",
        ]) == 0
        assert " k " in capsys.readouterr().out

    def test_gemm_trace_export(self, capsys, tmp_path):
        out_file = tmp_path / "t.json"
        assert main([
            "gemm", "1024x32x64", "--impl", "ftimm", "--timing", "des",
            "--trace", str(out_file),
        ]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        assert "core0/compute" in capsys.readouterr().out


class TestExperimentCommand:
    def test_tables_experiment(self, capsys):
        assert main(["experiment", "tables"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "VFMULAS32" in out


class TestNewFlags:
    def test_gemm_plan_flag(self, capsys):
        assert main([
            "gemm", "1024x32x64", "--impl", "ftimm", "--timing", "analytic",
            "--plan",
        ]) == 0
        out = capsys.readouterr().out
        assert "traffic by route" in out

    def test_gemm_f64(self, capsys):
        assert main([
            "gemm", "1024x32x64", "--dtype", "f64", "--timing", "analytic",
            "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "verify [ftimm]" in out
        assert "tgemm" not in out.split("impl")[1].split("\n")[2]

    def test_kernel_f64(self, capsys):
        assert main(["kernel", "8", "48", "128", "--dtype", "f64"]) == 0
        assert "/f64" in capsys.readouterr().out

    def test_experiment_hetero(self, capsys):
        assert main(["experiment", "hetero"]) == 0
        assert "co-execution" in capsys.readouterr().out


class TestTraceInvariants:
    def run_traced(self):
        from repro.core.ftimm import _lower
        from repro.core.shapes import GemmShape
        from repro.core.tuner import tune
        from repro.executor.timed import run_timed
        from repro.executor.trace import TraceRecorder
        from repro.hw.config import default_machine
        from repro.kernels.registry import registry_for

        machine = default_machine()
        shape = GemmShape(1024, 32, 64)
        decision = tune(shape, machine.cluster)
        lowered = _lower(
            shape, machine.cluster, decision, None,
            registry_for(machine.cluster.core),
        )
        recorder = TraceRecorder()
        run_timed(lowered, trace=recorder)
        return recorder

    def test_span_times_non_negative(self):
        recorder = self.run_traced()
        assert recorder.spans
        for span in recorder.spans:
            assert span.start >= 0.0
            assert span.duration >= 0.0

    def test_compute_rows_have_no_overlap(self):
        # a core's compute pipeline runs one kernel at a time: consecutive
        # spans on any */compute row must not overlap
        recorder = self.run_traced()
        by_row = {}
        for span in recorder.spans:
            if span.row.endswith("/compute"):
                by_row.setdefault(span.row, []).append(span)
        assert by_row
        for row, spans in by_row.items():
            spans.sort(key=lambda s: s.start)
            for prev, cur in zip(spans, spans[1:]):
                assert cur.start >= prev.end - 1e-12, row

    def test_summary_utilization_bounded(self):
        recorder = self.run_traced()
        for summary in recorder.summarize():
            assert summary.busy >= 0.0
            assert summary.utilization <= 1.0 + 1e-9


class TestPerfCommand:
    SHAPE = "64x4096x4096"

    def test_perf_end_to_end(self, capsys, tmp_path):
        runlog = tmp_path / "runs.jsonl"
        assert main(["perf", "--shape", self.SHAPE,
                     "--runlog", str(runlog)]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "epoch" in out
        assert "roofline" in out
        lines = runlog.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["schema"] == "repro-perf/1"
        assert record["shape"] == "64x4096x4096"
        assert record["profile"]["epochs"]
        assert record["metrics"]

    def test_perf_compare_diffs_previous_run(self, capsys, tmp_path):
        runlog = tmp_path / "runs.jsonl"
        assert main(["perf", "--shape", self.SHAPE,
                     "--runlog", str(runlog)]) == 0
        capsys.readouterr()
        assert main(["perf", "--shape", self.SHAPE,
                     "--runlog", str(runlog), "--compare"]) == 0
        out = capsys.readouterr().out
        assert "compare:" in out
        assert "seconds" in out
        assert len(runlog.read_text().splitlines()) == 2

    def test_perf_compare_without_history(self, capsys, tmp_path):
        runlog = tmp_path / "runs.jsonl"
        assert main(["perf", "--shape", "512x32x256",
                     "--runlog", str(runlog), "--compare"]) == 0
        assert "no earlier" in capsys.readouterr().out

    def test_perf_metrics_dump(self, capsys, tmp_path):
        runlog = tmp_path / "runs.jsonl"
        assert main(["perf", "--shape", "512x32x256",
                     "--runlog", str(runlog), "--metrics"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert any(name.startswith("sim/") for name in payload)

    def test_perf_tgemm_impl(self, capsys, tmp_path):
        runlog = tmp_path / "runs.jsonl"
        assert main(["perf", "--shape", "512x32x256", "--impl", "tgemm",
                     "--runlog", str(runlog)]) == 0
        assert "tgemm" in capsys.readouterr().out

    def test_gemm_perf_flag(self, capsys):
        assert main(["gemm", "1024x32x64", "--impl", "ftimm",
                     "--timing", "des", "--perf"]) == 0
        assert "verdict" in capsys.readouterr().out

    def test_gemm_trace_prints_row_utilization(self, capsys, tmp_path):
        trace_file = tmp_path / "t.json"
        assert main(["gemm", "1024x32x64", "--impl", "ftimm",
                     "--timing", "des", "--trace", str(trace_file),
                     "--perf"]) == 0
        out = capsys.readouterr().out
        # one DES run feeds the timeline, the row-utilization summary
        # table, and the bottleneck report
        assert "util" in out
        assert "verdict" in out


class TestServeCommand:
    def test_serve_sweep_runs_and_logs(self, capsys, tmp_path):
        runlog = tmp_path / "runs.jsonl"
        assert main([
            "serve", "--mix", "fem", "--loads", "20000,40000",
            "--n", "16", "--seed", "1", "--runlog", str(runlog),
        ]) == 0
        out = capsys.readouterr().out
        assert "serve sweep: mix=fem" in out
        assert "goodput" in out
        assert "serve/latency/total_s" in out
        record = json.loads(runlog.read_text().splitlines()[-1])
        assert record["impl"] == "serve"
        assert record["shape"] == "mix:fem"
        assert record["profile"]["sweep"][-1]["goodput_rps"] > 0

    def test_serve_compare_naive_and_latency_table(self, capsys, tmp_path):
        runlog = tmp_path / "runs.jsonl"
        assert main([
            "serve", "--mix", "fem", "--loads", "30000", "--n", "12",
            "--compare-naive", "--latency-table",
            "--runlog", str(runlog),
        ]) == 0
        out = capsys.readouterr().out
        assert "naive baseline" in out
        assert "per-request latency" in out
        assert "completed" in out

    def test_serve_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "magic"])

    def test_serve_bad_loads_reported_cleanly(self, capsys, tmp_path):
        assert main([
            "serve", "--loads", "two,hundred",
            "--runlog", str(tmp_path / "r.jsonl"),
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_serve_gateway_audits_bit_identity(self, capsys, tmp_path):
        assert main([
            "serve", "--gateway", "--mix", "fem", "--loads", "30000",
            "--n", "12", "--seed", "3",
            "--runlog", str(tmp_path / "r.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "records bit-identical to pre-drawn replay: yes" in out
        assert "gateway counters:" in out
        assert "submitted=12" in out
        assert "resolved=12" in out


class TestTraceCommand:
    def _runlog(self, tmp_path, name, max_wait):
        runlog = tmp_path / name
        assert main([
            "serve", "--mix", "fem", "--loads", "40000", "--n", "16",
            "--seed", "2", "--max-wait", max_wait,
            "--runlog", str(runlog),
        ]) == 0
        return runlog

    def test_single_input_renders_critical_path(self, capsys, tmp_path):
        runlog = self._runlog(tmp_path, "a.jsonl", "2e-3")
        capsys.readouterr()
        assert main(["trace", str(runlog)]) == 0
        out = capsys.readouterr().out
        assert "critical path over" in out
        assert "queue" in out

    def test_two_inputs_diff_tails(self, capsys, tmp_path):
        a = self._runlog(tmp_path, "a.jsonl", "2e-3")
        b = self._runlog(tmp_path, "b.jsonl", "1e-4")
        capsys.readouterr()
        assert main(["trace", str(a), str(b), "--compare"]) == 0
        out = capsys.readouterr().out
        assert "A: " in out and "B: " in out
        assert "critical-path diff" in out
        assert "dp50 (ms)" in out
        assert "verdict:" in out

    def test_compare_without_second_input_errors(self, capsys, tmp_path):
        a = self._runlog(tmp_path, "a.jsonl", "2e-3")
        capsys.readouterr()
        assert main(["trace", str(a), "--compare"]) == 1
        assert "two inputs" in capsys.readouterr().err

    def test_missing_input_reported_cleanly(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err
