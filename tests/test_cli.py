"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_shape_parsing(self):
        args = build_parser().parse_args(["classify", "128x32x64"])
        assert args.shape == (128, 32, 64)

    def test_star_separator_accepted(self):
        args = build_parser().parse_args(["classify", "128*32*64"])
        assert args.shape == (128, 32, 64)

    def test_bad_shape_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "128x32"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestClassify:
    def test_classify_output(self, capsys):
        assert main(["classify", "65536x32x32"]) == 0
        out = capsys.readouterr().out
        assert "type1" in out
        assert "AI" in out

    def test_invalid_dims_reported_cleanly(self, capsys):
        assert main(["classify", "0x32x32"]) == 1
        assert "error" in capsys.readouterr().err


class TestMachine:
    def test_machine_summary(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "345.6 GFLOPS" in out
        assert "42.6 GB/s" in out


class TestKernel:
    def test_kernel_summary(self, capsys):
        assert main(["kernel", "6", "64", "128"]) == 0
        out = capsys.readouterr().out
        assert "II=8" in out
        assert "registers" in out

    def test_kernel_table(self, capsys):
        assert main(["kernel", "8", "96", "128", "--table"]) == 0
        assert "VFMULAS32" in capsys.readouterr().out

    def test_kernel_asm(self, capsys):
        assert main(["kernel", "4", "32", "16", "--asm"]) == 0
        out = capsys.readouterr().out
        assert "setup:" in out and "teardown:" in out
        assert "SVBCAST" in out

    def test_tgemm_kernel(self, capsys):
        assert main(["kernel", "6", "32", "128", "--tgemm"]) == 0
        assert "tgemm" in capsys.readouterr().out

    def test_invalid_kernel_reported(self, capsys):
        assert main(["kernel", "6", "200", "128"]) == 1
        assert "error" in capsys.readouterr().err


class TestGemm:
    def test_gemm_both_impls(self, capsys):
        assert main(["gemm", "2048x32x128", "--timing", "analytic"]) == 0
        out = capsys.readouterr().out
        assert "ftimm" in out and "tgemm" in out
        assert "roofline" in out

    def test_gemm_verify(self, capsys):
        assert main([
            "gemm", "512x32x64", "--verify", "--timing", "none",
            "--impl", "ftimm",
        ]) == 0
        out = capsys.readouterr().out
        assert "verify [ftimm]" in out
        err = float(out.split("= ")[1].split()[0])
        assert err < 1e-2

    def test_gemm_cores_and_strategy(self, capsys):
        assert main([
            "gemm", "20480x32x2048", "--cores", "4", "--impl", "ftimm",
            "--timing", "analytic", "--force-strategy", "k",
        ]) == 0
        assert " k " in capsys.readouterr().out

    def test_gemm_trace_export(self, capsys, tmp_path):
        out_file = tmp_path / "t.json"
        assert main([
            "gemm", "1024x32x64", "--impl", "ftimm", "--timing", "des",
            "--trace", str(out_file),
        ]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        assert "core0/compute" in capsys.readouterr().out


class TestExperimentCommand:
    def test_tables_experiment(self, capsys):
        assert main(["experiment", "tables"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "VFMULAS32" in out


class TestNewFlags:
    def test_gemm_plan_flag(self, capsys):
        assert main([
            "gemm", "1024x32x64", "--impl", "ftimm", "--timing", "analytic",
            "--plan",
        ]) == 0
        out = capsys.readouterr().out
        assert "traffic by route" in out

    def test_gemm_f64(self, capsys):
        assert main([
            "gemm", "1024x32x64", "--dtype", "f64", "--timing", "analytic",
            "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "verify [ftimm]" in out
        assert "tgemm" not in out.split("impl")[1].split("\n")[2]

    def test_kernel_f64(self, capsys):
        assert main(["kernel", "8", "48", "128", "--dtype", "f64"]) == 0
        assert "/f64" in capsys.readouterr().out

    def test_experiment_hetero(self, capsys):
        assert main(["experiment", "hetero"]) == 0
        assert "co-execution" in capsys.readouterr().out
