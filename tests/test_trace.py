"""Execution tracing: span recording, summaries, Chrome export."""

import json

import pytest

from repro.core.parallel_m import build_parallel_m
from repro.core.shapes import GemmShape
from repro.errors import SimulationError
from repro.executor.timed import run_timed
from repro.executor.trace import Span, TraceRecorder


def traced_run(cluster, registry, shape=GemmShape(1000, 32, 128)):
    trace = TraceRecorder()
    result = run_timed(
        build_parallel_m(shape, cluster, registry=registry), trace=trace
    )
    return trace, result


class TestRecorder:
    def test_backwards_span_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecorder().add("r", "x", 2.0, 1.0, "kernel")

    def test_span_duration(self):
        assert Span("r", "x", 1.0, 3.5, "dma").duration == 2.5

    def test_run_produces_spans_for_all_ops(self, cluster, registry):
        trace, _result = traced_run(cluster, registry)
        assert trace.n_spans > 0
        categories = {s.category for s in trace.spans}
        assert categories >= {"kernel", "dma", "sync"}

    def test_spans_within_simulated_time(self, cluster, registry):
        trace, result = traced_run(cluster, registry)
        assert all(0 <= s.start <= s.end <= result.seconds + 1e-12
                   for s in trace.spans)

    def test_kernel_spans_match_cycle_model(self, cluster, registry):
        trace, _ = traced_run(cluster, registry)
        kern = registry.ftimm(8, 32, 128)
        expected = kern.cycles / cluster.core.clock_hz
        kernel_spans = [s for s in trace.spans if s.category == "kernel"]
        assert kernel_spans
        assert any(abs(s.duration - expected) < 1e-12 for s in kernel_spans)

    def test_compute_spans_never_overlap_per_core(self, cluster, registry):
        """One compute pipeline per core: its spans must be disjoint."""
        trace, _ = traced_run(cluster, registry)
        for core in range(cluster.n_cores):
            row = sorted(
                (s.start, s.end)
                for s in trace.spans
                if s.row == f"core{core}/compute"
            )
            for (s1, e1), (s2, _e2) in zip(row, row[1:]):
                assert e1 <= s2 + 1e-12


class TestSummaries:
    def test_summary_rows(self, cluster, registry):
        trace, _ = traced_run(cluster, registry)
        rows = {s.row for s in trace.spans}
        summaries = trace.summarize()
        assert {s.row for s in summaries} == rows
        for summary in summaries:
            assert 0 < summary.utilization <= 1.0 + 1e-9

    def test_merged_busy_never_exceeds_window(self, cluster, registry):
        trace, result = traced_run(cluster, registry)
        for summary in trace.summarize():
            assert summary.busy <= result.seconds + 1e-12

    def test_dma_busier_than_compute_when_memory_bound(self, cluster, registry):
        """N=32 shapes are DDR-bound: engines out-busy the pipelines."""
        trace, _ = traced_run(cluster, registry, GemmShape(4000, 32, 64))
        summaries = {s.row: s for s in trace.summarize()}
        assert summaries["core0/dma"].busy > summaries["core0/compute"].busy


class TestExport:
    def test_chrome_trace_structure(self, cluster, registry):
        trace, _ = traced_run(cluster, registry)
        doc = trace.to_chrome_trace()
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == trace.n_spans
        assert all(e["dur"] >= 0 for e in xs)

    def test_save_roundtrip(self, cluster, registry, tmp_path):
        trace, _ = traced_run(cluster, registry)
        path = trace.save(tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) >= trace.n_spans

    def test_ascii_timeline(self, cluster, registry):
        trace, _ = traced_run(cluster, registry)
        text = trace.ascii_timeline(width=40)
        assert "core0/compute" in text
        assert "#" in text

    def test_ascii_timeline_empty(self):
        assert "empty" in TraceRecorder().ascii_timeline()
