"""VLIW unit files and their derivation from core configs."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.hw.config import DspCoreConfig
from repro.isa.units import (
    DEFAULT_UNITS,
    DEFAULT_UNIT_COUNTS,
    TABLE_ROW_ORDER,
    UNIT_DISPLAY_NAMES,
    UnitClass,
    UnitFile,
    units_for,
)


class TestDefaultUnits:
    def test_issue_width_is_eleven(self):
        """5 scalar + 6 vector slots, the paper's IFU."""
        assert DEFAULT_UNITS.issue_width == 11

    def test_scalar_vector_split(self):
        scalar = sum(
            n for cls, n in DEFAULT_UNITS.counts if cls.is_scalar
        )
        vector = DEFAULT_UNITS.issue_width - scalar
        assert scalar == 5
        assert vector == 6

    def test_three_fmac_pipes(self):
        assert DEFAULT_UNITS.count(UnitClass.VFMAC) == 3

    def test_single_broadcast_slot(self):
        """The 2-scalars-per-cycle SPU limit = one broadcast instruction
        slot (SVBCAST2 carries two scalars)."""
        assert DEFAULT_UNITS.count(UnitClass.SFMAC2) == 1

    def test_as_dict_matches_counts(self):
        assert DEFAULT_UNITS.as_dict() == DEFAULT_UNIT_COUNTS

    def test_unknown_class_rejected(self):
        partial = UnitFile(((UnitClass.VFMAC, 3),))
        with pytest.raises(ConfigError):
            partial.count(UnitClass.SLS)


class TestUnitsFor:
    def test_default_config_matches_default_units(self):
        derived = units_for(DspCoreConfig())
        assert derived.as_dict() == DEFAULT_UNITS.as_dict()

    def test_fmac_count_follows_config(self):
        core = dataclasses.replace(DspCoreConfig(), n_vector_fmac=1)
        assert units_for(core).count(UnitClass.VFMAC) == 1

    def test_vls_count_follows_config(self):
        core = dataclasses.replace(DspCoreConfig(), n_vector_ls=4)
        assert units_for(core).count(UnitClass.VLS) == 4


class TestDisplayTables:
    def test_every_row_has_a_display_name(self):
        for key in TABLE_ROW_ORDER:
            assert key in UNIT_DISPLAY_NAMES

    def test_paper_row_names_present(self):
        names = set(UNIT_DISPLAY_NAMES.values())
        for expected in (
            "Scalar Load&Store1", "Scalar FMAC1", "Scalar FMAC2", "SIEU",
            "Vector Load&Store1", "Vector Load&Store2",
            "Vector FMAC1", "Vector FMAC2", "Vector FMAC3", "Control unit",
        ):
            assert expected in names

    def test_row_order_matches_paper_tables(self):
        """Scalar rows above vector rows, control last — Tables I-III."""
        classes = [cls for cls, _i in TABLE_ROW_ORDER]
        assert classes[-1] is UnitClass.CTRL
        first_vector = next(
            i for i, cls in enumerate(classes) if not cls.is_scalar
        )
        assert all(cls.is_scalar for cls in classes[:first_vector])


class TestReducedVlsEffect:
    def test_halved_load_bandwidth_stretches_kernels(self):
        """With one vector load/store unit, the per-iteration B loads and
        the C-update epilogue both serialize harder: every kernel slows,
        measurably (the scheduler re-derives a larger II / longer spans)."""
        from repro.kernels.registry import KernelRegistry

        base = DspCoreConfig()
        slim = dataclasses.replace(base, n_vector_ls=1)
        reg_base = KernelRegistry(base)
        reg_slim = KernelRegistry(slim)
        for k in (512, 16):
            ratio = (
                reg_slim.ftimm(8, 96, k).cycles
                / reg_base.ftimm(8, 96, k).cycles
            )
            assert ratio > 1.05, k
