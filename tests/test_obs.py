"""Observability layer: registry, profiles, run-logs, bottleneck report.

The key guarantees under test:

* instrumentation is a no-op by default — timed results are bit-identical
  with and without an ambient registry;
* the registry snapshot survives a JSON round-trip;
* the per-epoch profile is physically sensible (non-negative spans,
  busy fractions <= 1, epoch boundaries tile the run).
"""

import json

import pytest

from repro.analysis.bottleneck import (
    IDLE_THRESHOLD,
    BottleneckReport,
    attribute,
    diff_records,
)
from repro.core.ftimm import _lower
from repro.core.shapes import GemmShape
from repro.core.tuner import tune
from repro.errors import ReproError
from repro.executor.timed import run_timed
from repro.hw.config import default_machine
from repro.kernels.registry import registry_for
from repro.obs import (
    MetricsRegistry,
    ProfileScope,
    RunProfile,
    collecting,
    current,
    make_record,
    append_record,
    read_records,
    last_matching,
)
from repro.obs.profile import merge_intervals


def timed_run(shape=GemmShape(512, 32, 256), **kw):
    machine = default_machine()
    decision = tune(shape, machine.cluster)
    lowered = _lower(
        shape, machine.cluster, decision, None,
        registry_for(machine.cluster.core),
    )
    return run_timed(lowered, **kw), shape, machine.cluster


class TestRegistry:
    def test_counter_gauge_distribution(self):
        reg = MetricsRegistry()
        reg.counter("a/b").inc()
        reg.counter("a/b").inc(4)
        assert reg.counter("a/b").value == 5
        reg.gauge("g").set(2.0)
        reg.gauge("g").set(7.0)
        reg.gauge("g").set(3.0)
        assert reg.gauge("g").value == 3.0
        assert reg.gauge("g").high == 7.0
        d = reg.distribution("d")
        for x in (1.0, 2.0, 3.0):
            d.add(x)
        assert d.count == 3 and d.mean == pytest.approx(2.0)
        assert d.min == 1.0 and d.max == 3.0

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError):
            reg.gauge("x")

    def test_names_prefix(self):
        reg = MetricsRegistry()
        reg.counter("sim/events")
        reg.counter("dma/bytes")
        assert reg.names("sim/") == ["sim/events"]

    def test_snapshot_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.timer("t").add(0.25)
        reg.distribution("d").add(9.0)
        restored = MetricsRegistry.from_json(reg.to_json())
        assert restored.snapshot() == reg.snapshot()
        # and the JSON itself is plain data
        json.loads(reg.to_json())

    def test_ambient_default_is_none(self):
        assert current() is None

    def test_collecting_scopes_the_registry(self):
        with collecting() as reg:
            assert current() is reg
            current().counter("k").inc()
        assert current() is None
        assert reg.counter("k").value == 1

    def test_profile_scope_noop_without_registry(self):
        with ProfileScope("nothing"):
            pass  # must not raise, must not create state

    def test_profile_scope_records_time(self):
        with collecting() as reg:
            with ProfileScope("work"):
                pass
        t = reg.timer("work")
        assert t.count == 1 and t.total >= 0.0


class TestHistogram:
    def test_quantiles_on_log_spaced_samples(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in [1e-4] * 90 + [1e-2] * 9 + [1.0]:
            h.add(v)
        assert h.count == 100
        # p50 lands in the 1e-4 bin; quantile reads the bin's upper edge
        assert 1e-4 <= h.quantile(0.50) <= 2e-4
        assert 1e-2 <= h.quantile(0.95) <= 2e-2
        assert h.quantile(1.0) == 1.0
        pct = h.percentiles()
        assert pct["p50"] <= pct["p95"] <= pct["p99"]

    def test_quantile_error_bounded_by_bin_width(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", per_decade=4)
        samples = [1.3e-3, 2.9e-3, 4.4e-3, 8.1e-3]
        for v in samples:
            h.add(v)
        ratio = 10 ** (1 / 4)  # one bin width at 4 bins/decade
        for q, exact in ((0.25, samples[0]), (1.0, samples[-1])):
            est = h.quantile(q)
            assert exact / ratio <= est <= exact * ratio

    def test_under_and_overflow_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", lo_exp=-3, hi_exp=0)
        h.add(1e-6)   # below 1e-3 -> underflow
        h.add(5.0)    # above 1e0  -> overflow
        assert h.counts[0] == 1 and h.counts[-1] == 1
        assert h.quantile(0.5) == 1e-6   # clamped to observed min
        assert h.quantile(1.0) == 5.0    # clamped to observed max

    def test_empty_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        snap = h.snapshot()
        assert snap["min"] is None and snap["max"] is None

    def test_bad_bin_spec_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.histogram("bad", lo_exp=2, hi_exp=1)
        with pytest.raises(ReproError):
            reg.histogram("bad2", per_decade=0)

    def test_bad_quantile_rejected(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.add(1.0)
        with pytest.raises(ReproError):
            h.quantile(0.0)
        with pytest.raises(ReproError):
            h.quantile(1.5)

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", lo_exp=-5, hi_exp=1, per_decade=3)
        for v in (1e-4, 3e-4, 2e-2, 0.5, 100.0):
            h.add(v)
        restored = MetricsRegistry.from_json(reg.to_json())
        assert restored.snapshot() == reg.snapshot()
        assert restored.histogram("lat").quantile(0.5) == h.quantile(0.5)

    def test_histograms_prefix_listing(self):
        reg = MetricsRegistry()
        reg.histogram("serve/latency/total_s").add(1e-3)
        reg.histogram("serve/latency/queue_s").add(1e-4)
        reg.counter("serve/requests/completed").inc()
        names = sorted(h.name for h in reg.histograms("serve/"))
        assert names == [
            "serve/latency/queue_s", "serve/latency/total_s",
        ]

    def test_kind_mismatch_with_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        with pytest.raises(ReproError):
            reg.counter("h")


class TestMergeIntervals:
    def test_overlapping_merged(self):
        assert merge_intervals([(0.0, 2.0), (1.0, 3.0)]) == pytest.approx(3.0)

    def test_disjoint_summed(self):
        # unsorted input, gap between spans
        assert merge_intervals([(3.0, 4.0), (0.0, 1.0)]) == pytest.approx(2.0)

    def test_contained_span_ignored(self):
        assert merge_intervals([(0.0, 5.0), (1.0, 2.0)]) == pytest.approx(5.0)

    def test_empty(self):
        assert merge_intervals([]) == 0.0


class TestNoOpDefault:
    def test_bit_identical_with_and_without_collecting(self):
        plain, _, _ = timed_run()
        with collecting():
            observed, _, _ = timed_run(profile=True)
        assert observed.seconds == plain.seconds
        assert observed.events_processed == plain.events_processed
        assert observed.dma_bytes == plain.dma_bytes
        assert observed.core_busy == plain.core_busy

    def test_profile_absent_by_default(self):
        plain, _, _ = timed_run()
        assert plain.profile is None


class TestRunProfileInvariants:
    @pytest.fixture(scope="class")
    def profiled(self):
        return timed_run(profile=True)

    def test_profile_attached(self, profiled):
        result, _, _ = profiled
        assert result.profile is not None
        assert result.profile.epochs

    def test_epochs_tile_the_run(self, profiled):
        result, _, _ = profiled
        prof = result.profile
        assert prof.epochs[0].start == 0.0
        for prev, cur in zip(prof.epochs, prof.epochs[1:]):
            assert cur.start == pytest.approx(prev.end)
            assert cur.index == prev.index + 1
        assert prof.epochs[-1].end == pytest.approx(result.seconds)

    def test_spans_non_negative(self, profiled):
        result, _, _ = profiled
        for ep in result.profile.epochs:
            assert ep.duration >= 0.0
            for series in (
                ep.compute_busy,
                ep.dma_busy,
                ep.sync_wait,
                ep.window_stall,
            ):
                assert all(x >= 0.0 for x in series)

    def test_busy_fractions_bounded(self, profiled):
        result, _, _ = profiled
        for ep in result.profile.epochs:
            if ep.duration <= 0.0:
                continue
            for series in (ep.compute_busy, ep.dma_busy):
                for busy in series:
                    # merged spans can never exceed the epoch window
                    assert busy <= ep.duration * (1 + 1e-9)
            assert 0.0 <= ep.compute_frac <= 1.0
            assert 0.0 <= ep.dma_frac <= 1.0

    def test_profile_dict_round_trip(self, profiled):
        result, _, _ = profiled
        prof = result.profile
        restored = RunProfile.from_dict(
            json.loads(json.dumps(prof.to_dict()))
        )
        assert restored.to_dict() == prof.to_dict()


class TestPublishedMetrics:
    def test_simulator_and_dma_metrics(self):
        with collecting() as reg:
            result, _, _ = timed_run()
        assert reg.counter("sim/events_processed").value == (
            result.events_processed
        )
        assert reg.counter("sim/process_wakeups").value > 0
        assert reg.gauge("sim/heap_peak").value >= 1
        assert reg.counter("dma/transfers").value > 0
        ddr = reg.counter("bw/ddr/bytes_served").value
        assert ddr > 0
        medium_total = sum(
            reg.counter(name).value for name in reg.names("dma/bytes/")
        )
        assert medium_total > 0

    def test_scheduler_metrics(self):
        from repro.kernels.registry import KernelRegistry

        # a memory-only registry guarantees the scheduler actually runs
        # (disk=False bypasses the persistent kernel cache)
        with collecting() as reg:
            KernelRegistry(
                default_machine().cluster.core, disk=False
            ).ftimm(8, 96, 512)
        assert reg.counter("isa/loops_scheduled").value >= 1
        ii = reg.distribution("isa/ii")
        slack = reg.distribution("isa/ii_slack")
        assert ii.count >= 1 and ii.min >= 1
        assert slack.min >= 0.0  # II can never beat the MII lower bound
        for name in reg.names("isa/occupancy/"):
            occ = reg.distribution(name)
            assert 0.0 <= occ.max <= 1.0 + 1e-9

    def test_tuner_metrics(self):
        shape = GemmShape(512, 32, 256)
        with collecting() as reg:
            tune(shape, default_machine().cluster)
        assert reg.counter("tuner/decisions").value == 1
        strategy_names = reg.names("tuner/strategy/")
        assert len(strategy_names) == 1
        assert reg.counter(strategy_names[0]).value == 1


class TestRunLog:
    def record(self, seconds=1.0, bound="ddr"):
        return make_record(
            shape="64x4096x4096",
            impl="ftimm",
            strategy="mPsK",
            cores=8,
            seconds=seconds,
            gflops=100.0,
            efficiency=0.5,
            bound=bound,
        )

    def test_append_and_read(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_record(path, self.record())
        append_record(path, self.record(seconds=2.0))
        records = read_records(path)
        assert len(records) == 2
        assert records[1]["seconds"] == 2.0

    def test_other_schemas_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_record(path, {"schema": "other/1", "x": 1})
        append_record(path, self.record())
        assert len(read_records(path)) == 1

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            read_records(path)

    def test_last_matching(self, tmp_path):
        a = self.record(seconds=1.0)
        b = self.record(seconds=2.0)
        other = make_record(
            shape="1x2x3",
            impl="tgemm",
            strategy="tgemm",
            cores=8,
            seconds=9.0,
            gflops=1.0,
            efficiency=0.1,
            bound="idle",
        )
        match = last_matching(
            [a, other, b], shape="64x4096x4096", impl="ftimm", cores=8
        )
        assert match is b
        assert (
            last_matching([other], shape="9x9x9", impl="ftimm", cores=8)
            is None
        )


class TestBottleneck:
    @pytest.fixture(scope="class")
    def report(self):
        result, shape, cluster = timed_run(
            GemmShape(64, 4096, 4096), profile=True
        )
        return attribute(result, GemmShape(64, 4096, 4096), cluster)

    def test_requires_profile(self):
        result, shape, cluster = timed_run()
        with pytest.raises(ReproError):
            attribute(result, shape, cluster)

    def test_report_shape(self, report):
        assert isinstance(report, BottleneckReport)
        assert report.epochs
        for ep in report.epochs:
            assert ep.bound in {"compute", "ddr", "memory", "sync", "idle"}
            total = ep.compute_frac + ep.dma_frac
            assert total >= IDLE_THRESHOLD or ep.bound in {"idle", "sync"}

    def test_overall_bound_is_an_epoch_bound(self, report):
        assert report.bound in {ep.bound for ep in report.epochs}

    def test_render_mentions_verdict_and_epochs(self, report):
        text = report.render()
        assert "verdict" in text
        assert "epoch" in text
        assert report.bound in text

    def test_roofline_fraction_sane(self, report):
        assert 0.0 < report.roofline_fraction <= 1.5

    def test_diff_records(self):
        old = make_record(
            shape="64x4096x4096",
            impl="ftimm",
            strategy="mPsK",
            cores=8,
            seconds=2.0,
            gflops=50.0,
            efficiency=0.25,
            bound="ddr",
        )
        new = make_record(
            shape="64x4096x4096",
            impl="ftimm",
            strategy="mPsK",
            cores=8,
            seconds=1.0,
            gflops=100.0,
            efficiency=0.5,
            bound="compute",
        )
        text = diff_records(old, new)
        assert "seconds" in text
        assert "ddr" in text and "compute" in text
