"""The serving subsystem: batching, scheduling, admission, accounting.

The contracts under test are the ones the module docstrings promise:

* same seed + config replays the identical request-level latency table;
* every admitted request completes **bit-identical** to a standalone
  ``ftimm_gemm`` of its own shape, or is counted shed/failed — never
  silently dropped;
* shedding is typed (`OverloadError` semantics) and visible in the
  records and metrics;
* EDF meets strictly more deadlines than FIFO on the reference overload
  mix, and batching beats the one-call-per-request baseline at
  saturation.
"""

from dataclasses import replace as dc_replace

import numpy as np
import pytest

from repro.core.ftimm import ftimm_gemm
from repro.core.shapes import GemmShape
from repro.errors import PlanError, ShapeError
from repro.faults import FaultPlan
from repro.obs import collecting
from repro.serve import (
    GemmRequest,
    ServeConfig,
    ShapeBucketBatcher,
    ShapeClass,
    bucket_key,
    get_mix,
    make_requests,
    serve,
    sweep,
)
from repro.serve.request import COMPLETED, FAILED, SHED

# small, fast mix for the mechanics tests (policy tests use "overload")
FAST_MIX = [
    ShapeClass("tiny", GemmShape(32, 16, 16), weight=2.0,
               slo_s=2e-3, n_b_variants=1),
    ShapeClass("wide", GemmShape(16, 64, 48), weight=1.0,
               slo_s=5e-3, n_b_variants=2),
]


def fast_requests(n=24, rate=50000, seed=0, **kw):
    return make_requests(FAST_MIX, rate_rps=rate, n_requests=n,
                         seed=seed, **kw)


class TestLoadgen:
    def test_stream_is_deterministic(self):
        r1 = fast_requests(seed=5)
        r2 = fast_requests(seed=5)
        assert [r.arrival_s for r in r1] == [r.arrival_s for r in r2]
        assert all(np.array_equal(a.a, b.a) for a, b in zip(r1, r2))

    def test_arrivals_increase(self):
        reqs = fast_requests(n=50)
        times = [r.arrival_s for r in reqs]
        assert times == sorted(times)
        assert times[0] > 0

    def test_b_variants_are_copies_with_equal_bits(self):
        reqs = [r for r in fast_requests(n=30) if r.klass == "tiny"]
        assert len(reqs) >= 2
        assert reqs[0].b is not reqs[1].b          # distinct objects
        assert np.array_equal(reqs[0].b, reqs[1].b)  # same contents

    def test_bursty_same_mean_load(self):
        pois = fast_requests(n=400, rate=10000, arrivals="poisson")
        burst = fast_requests(n=400, rate=10000, arrivals="bursty")
        assert burst[-1].arrival_s == pytest.approx(
            pois[-1].arrival_s, rel=0.2
        )

    def test_deadlines_follow_slo(self):
        req = fast_requests(n=1)[0]
        cls = {c.name: c for c in FAST_MIX}[req.klass]
        assert req.deadline_s == pytest.approx(req.arrival_s + cls.slo_s)

    def test_unknown_mix_rejected(self):
        with pytest.raises(PlanError):
            get_mix("nope")

    def test_bad_params_rejected(self):
        with pytest.raises(PlanError):
            make_requests(FAST_MIX, rate_rps=0, n_requests=10)
        with pytest.raises(PlanError):
            make_requests([], rate_rps=1000, n_requests=10)
        with pytest.raises(PlanError):
            make_requests(FAST_MIX, rate_rps=1000, n_requests=10,
                          arrivals="adversarial")


class TestBatcher:
    def test_coalesces_equal_content_bs(self):
        reqs = [r for r in fast_requests(n=30) if r.klass == "tiny"][:4]
        batcher = ShapeBucketBatcher(max_batch=4)
        out = [batcher.add(r, r.arrival_s) for r in reqs]
        assert out[:3] == [None, None, None]
        batch = out[3]
        assert batch is not None and batch.n_items == 4
        assert batch.stacked_m == sum(r.shape.m for r in reqs)

    def test_identity_bucketing_keeps_copies_apart(self):
        reqs = [r for r in fast_requests(n=30) if r.klass == "tiny"][:2]
        k_dig = [bucket_key(r, by_digest=True) for r in reqs]
        k_id = [bucket_key(r, by_digest=False) for r in reqs]
        assert k_dig[0] == k_dig[1]
        assert k_id[0] != k_id[1]

    def test_max_wait_closes_stale_bucket(self):
        req = fast_requests(n=1)[0]
        batcher = ShapeBucketBatcher(max_batch=16, max_wait_s=1e-4)
        assert batcher.add(req, req.arrival_s) is None
        key = bucket_key(req)
        assert batcher.close_due(key, req.arrival_s + 5e-5) is None
        batch = batcher.close_due(key, req.arrival_s + 2e-4)
        assert batch is not None and batch.n_items == 1
        assert batcher.waiting == 0

    def test_batch_deadline_is_earliest_member(self):
        reqs = [r for r in fast_requests(n=30) if r.klass == "tiny"][:3]
        batcher = ShapeBucketBatcher(max_batch=3)
        batch = [batcher.add(r, r.arrival_s) for r in reqs][-1]
        assert batch.deadline_s == min(r.deadline_s for r in reqs)


class TestServeContracts:
    def test_deterministic_replay(self):
        cfg = ServeConfig()
        t1 = serve(fast_requests(seed=9), cfg).latency_table()
        t2 = serve(fast_requests(seed=9), cfg).latency_table()
        assert t1 == t2

    def test_no_silent_drops(self):
        rep = serve(fast_requests(n=40), ServeConfig(queue_cap=4))
        statuses = {r.status for r in rep.records}
        assert statuses <= {COMPLETED, SHED, FAILED}
        assert rep.completed + rep.shed + rep.failed == rep.n_requests
        assert rep.n_requests == 40

    def test_completed_bits_match_standalone(self):
        reqs = fast_requests(n=16, seed=2)
        originals = {r.req_id: (r.a.copy(), r.b.copy(), r.c.copy())
                     for r in reqs}
        rep = serve(reqs, ServeConfig())
        assert rep.completed == 16
        for req in reqs:
            a, b, c0 = originals[req.req_id]
            ref = c0.copy()
            ftimm_gemm(req.shape.m, req.shape.n, req.shape.k,
                       a=a, b=b, c=ref, timing="none")
            assert np.array_equal(req.c, ref)

    def test_shedding_is_counted_and_typed(self):
        with collecting() as reg:
            rep = serve(fast_requests(n=40, rate=500000),
                        ServeConfig(queue_cap=2))
        assert rep.shed > 0
        shed_recs = [r for r in rep.records if r.status == SHED]
        assert len(shed_recs) == rep.shed
        assert all("queue full" in (r.error or "") for r in shed_recs)
        snap = reg.snapshot()
        assert snap["serve/requests/shed"]["value"] == rep.shed

    def test_warmup_avoids_cold_tunes(self):
        with collecting() as reg:
            serve(fast_requests(n=12), ServeConfig(warmup=True))
        assert "serve/tune/cold" not in reg.snapshot()
        with collecting() as reg:
            serve(fast_requests(n=12), ServeConfig(warmup=False))
        assert reg.snapshot()["serve/tune/cold"]["value"] > 0

    def test_latency_decomposition_adds_up(self):
        rep = serve(fast_requests(n=20), ServeConfig())
        for r in rep.records:
            if r.status != COMPLETED:
                continue
            assert r.queue_s >= 0 and r.batch_s >= 0 and r.compute_s > 0
            assert r.latency_s == pytest.approx(
                r.queue_s + r.batch_s + r.compute_s
            )

    def test_latency_histograms_emitted(self):
        with collecting() as reg:
            rep = serve(fast_requests(n=20), ServeConfig())
        snap = reg.snapshot()
        hist = snap["serve/latency/total_s"]
        assert hist["type"] == "histogram"
        assert hist["count"] == rep.completed
        assert hist["p99"] >= hist["p50"] > 0

    def test_empty_stream_rejected(self):
        with pytest.raises(PlanError):
            serve([], ServeConfig())

    def test_unknown_policy_rejected(self):
        with pytest.raises(PlanError):
            serve(fast_requests(n=4), ServeConfig(policy="magic"))


class TestFaultsUnderServe:
    def test_fault_storm_fails_batches_honestly(self):
        plan = FaultPlan(seed=3, bitflip_rate=1.0, max_kernel_retries=0)
        rep = serve(fast_requests(n=12),
                    ServeConfig(faults=plan, max_redispatch=1,
                                verify=False))
        assert rep.failed == 12
        assert rep.completed == 0
        failed = [r for r in rep.records if r.status == FAILED]
        assert all(r.error for r in failed)
        assert rep.redispatches > 0
        # lost time from failed attempts is charged to the batches
        assert sum(b.lost_s for b in rep.batches) > 0

    def test_redispatch_recovers_from_transient_faults(self):
        plan = FaultPlan(seed=2, bitflip_rate=0.05, max_kernel_retries=0)
        rep = serve(fast_requests(n=16, seed=4),
                    ServeConfig(faults=plan, max_redispatch=6))
        assert rep.completed == 16
        assert rep.failed == 0
        assert rep.redispatches > 0


class TestPolicies:
    """The reference overload experiment the CI smoke gate also runs."""

    def _deadlines(self, policy, seed=42):
        reqs = make_requests("overload", rate_rps=120000,
                             n_requests=150, seed=seed)
        rep = serve(reqs, ServeConfig(policy=policy, queue_cap=256))
        return rep.deadline_met

    def test_edf_beats_fifo_on_deadlines(self):
        assert self._deadlines("edf") > self._deadlines("fifo")

    def test_least_loaded_beats_fifo_on_deadlines(self):
        assert self._deadlines("least_loaded") > self._deadlines("fifo")

    def test_batching_beats_naive_at_saturation(self):
        cfg = ServeConfig(policy="edf", queue_cap=256)
        result = sweep("overload", [60000.0, 240000.0], n_requests=150,
                       seed=42, config=cfg, compare_naive=True)
        assert result.batching_wins_at_saturation


class TestSweep:
    def test_sweep_shapes_and_ordering(self):
        res = sweep(FAST_MIX, [20000.0, 40000.0], n_requests=16, seed=0)
        assert len(res.points) == 2
        assert res.points[0].offered_rps < res.points[1].offered_rps
        rendered = res.render()
        assert "goodput" in rendered

    def test_unsorted_loads_rejected(self):
        with pytest.raises(PlanError):
            sweep(FAST_MIX, [40000.0, 20000.0], n_requests=8)

    def test_record_fields_are_json_shaped(self):
        import json

        res = sweep(FAST_MIX, [30000.0], n_requests=8, seed=1,
                    compare_naive=True)
        fields = res.to_record_fields()
        json.dumps(fields)  # must be serializable as-is
        assert fields["sweep"][0]["goodput_rps"] > 0
        assert len(fields["naive_sweep"]) == 1


class TestRequestValidation:
    def test_operand_shape_mismatch_rejected(self):
        shape = GemmShape(8, 4, 4)
        a = np.zeros((8, 4), np.float32)
        b = np.zeros((4, 4), np.float32)
        with pytest.raises(ShapeError):
            GemmRequest(req_id=0, arrival_s=0.0, shape=shape,
                        a=a, b=b, c=np.zeros((8, 5), np.float32))

    def test_mix_classes_validate(self):
        with pytest.raises(PlanError):
            ShapeClass("bad", GemmShape(8, 8, 8), weight=0.0)
        with pytest.raises(PlanError):
            ShapeClass("bad", GemmShape(8, 8, 8), slo_s=-1.0)
        with pytest.raises(PlanError):
            ShapeClass("bad", GemmShape(8, 8, 8), n_b_variants=0)
