"""Model-driven autotuner: candidate feasibility, scoring, validation."""

import pytest

from repro.core.autotune import (
    AutotuneResult,
    _balanced_chunks,
    autotune,
    k_plan_candidates,
    m_plan_candidates,
)
from repro.core.shapes import GemmShape
from repro.errors import PlanError


class TestCandidates:
    def test_m_candidates_all_validate(self, cluster):
        shape = GemmShape(65536, 32, 512)
        plans = m_plan_candidates(shape, cluster)
        assert plans
        for plan in plans:
            assert plan.am_bytes() <= cluster.core.am_bytes
            assert plan.sm_bytes() <= cluster.core.sm_bytes
            assert plan.n_a == 32

    def test_k_candidates_all_validate(self, cluster):
        shape = GemmShape(32, 32, 65536)
        plans = k_plan_candidates(shape, cluster)
        assert plans
        for plan in plans:
            assert plan.am_bytes() <= cluster.core.am_bytes
            assert plan.m_a >= 32

    def test_candidates_deduplicated(self, cluster):
        plans = m_plan_candidates(GemmShape(1024, 32, 32), cluster)
        assert len(plans) == len(set(plans))

    def test_large_m_a_excluded_from_k_candidates(self, cluster):
        # M so large the partial C cannot fit half of AM
        assert k_plan_candidates(GemmShape(2**20, 96, 2**20), cluster) == []

    def test_balanced_chunks(self, cluster):
        chunk = _balanced_chunks(100, 40, 8, 4)
        assert chunk % 8 == 0
        assert chunk <= 40

    def test_balanced_chunks_deal_evenly(self):
        import math

        for total, cmax, quantum, p in [(100, 40, 8, 4), (65536, 4096, 8, 8)]:
            chunk = _balanced_chunks(total, cmax, quantum, p)
            n_chunks = math.ceil(total / chunk)
            assert n_chunks % p == 0 or n_chunks < p


class TestAutotune:
    def test_validated_search_never_loses(self, cluster, registry):
        for m, n, k in [(65536, 32, 32), (32, 32, 65536)]:
            result = autotune(GemmShape(m, n, k), cluster, registry)
            assert result.improvement >= 0.999

    def test_result_structure(self, cluster, registry):
        result = autotune(GemmShape(8192, 32, 512), cluster, registry)
        assert isinstance(result, AutotuneResult)
        assert result.n_candidates > 0
        assert result.best.seconds <= result.rule.seconds * 1.001
        assert "m_s=" in result.best.label

    def test_wide_n_rejected(self, cluster, registry):
        with pytest.raises(PlanError):
            autotune(GemmShape(4096, 512, 4096), cluster, registry)

    def test_validation_can_be_disabled(self, cluster, registry):
        result = autotune(
            GemmShape(8192, 32, 512), cluster, registry, validate_top=0
        )
        assert not result.best.validated

    def test_validation_marks_candidates(self, cluster, registry):
        result = autotune(GemmShape(8192, 32, 512), cluster, registry)
        assert result.best.validated
        assert result.rule.validated

    def test_pure_analytic_can_mislead_but_validation_fixes_it(
        self, cluster, registry
    ):
        """The documented pitfall: for 32x32x65536 the analytic model
        prefers a degenerate M-parallel plan the DES refutes."""
        shape = GemmShape(32, 32, 65536)
        unvalidated = autotune(shape, cluster, registry, validate_top=0)
        validated = autotune(shape, cluster, registry)
        # the analytic search claims a bigger win than survives validation
        assert unvalidated.improvement >= validated.improvement - 1e-9
        assert validated.improvement >= 0.999

    def test_huge_plans_skip_validation_gracefully(self, cluster, registry):
        result = autotune(GemmShape(2**20, 8, 8), cluster, registry)
        assert result.n_candidates > 0  # analytic ranking still returned


class TestExperiment:
    def test_ext_autotune_claims_hold(self):
        from repro.experiments import ext_autotune

        for result in ext_autotune.run():
            for claim in result.claims:
                assert claim.holds, f"{claim.name}: {claim.measured}"
