"""Batched / grouped GEMM."""

import numpy as np
import pytest

from repro.core.batched import (
    BatchedGemmResult,
    b_digest,
    batched_gemm,
    grouped_gemm,
    naive_batch_seconds,
)
from repro.core.shapes import GemmShape
from repro.errors import PlanError, ShapeError


def make_group(n_items=5, m=64, n=24, k=8, seed=0):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((k, n)).astype(np.float32)
    a_blocks = [rng.standard_normal((m, k)).astype(np.float32) for _ in range(n_items)]
    c_blocks = [rng.standard_normal((m, n)).astype(np.float32) for _ in range(n_items)]
    refs = [c + a @ b for a, c in zip(a_blocks, c_blocks)]
    return a_blocks, b, c_blocks, refs


class TestGroupedGemm:
    def test_correctness(self):
        a_blocks, b, c_blocks, refs = make_group()
        result = grouped_gemm(a_blocks, b, c_blocks, timing="none")
        for c, ref in zip(c_blocks, refs):
            np.testing.assert_allclose(c, ref, rtol=1e-3, atol=1e-3)
        assert result.n_items == 5
        assert result.shape == GemmShape(5 * 64, 24, 8)

    def test_uneven_block_heights(self):
        rng = np.random.default_rng(1)
        b = rng.standard_normal((8, 16)).astype(np.float32)
        a_blocks = [
            rng.standard_normal((m, 8)).astype(np.float32) for m in (10, 33, 7)
        ]
        c_blocks = [np.zeros((a.shape[0], 16), np.float32) for a in a_blocks]
        grouped_gemm(a_blocks, b, c_blocks, timing="none")
        for a, c in zip(a_blocks, c_blocks):
            np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-4)

    def test_timing_only_mode(self):
        result = grouped_gemm(None, None, None, m_blocks=[1000] * 8, n=24, k=8)
        assert result.seconds > 0
        assert result.shape.m == 8000

    def test_mismatched_shapes_rejected(self):
        a_blocks, b, c_blocks, _ = make_group()
        c_blocks[0] = np.zeros((64, 25), np.float32)  # wrong N
        with pytest.raises(PlanError):
            grouped_gemm(a_blocks, b, c_blocks, timing="none")

    def test_empty_group_rejected(self):
        with pytest.raises(ShapeError):
            grouped_gemm([], np.zeros((4, 4), np.float32), [], timing="none")
        with pytest.raises(ShapeError):
            grouped_gemm(None, None, None, m_blocks=[], n=4, k=4)

    def test_missing_args_rejected(self):
        with pytest.raises(PlanError):
            grouped_gemm(None, None, None)


class TestBatchedGemm:
    def test_groups_by_shared_b(self):
        a1, b1, c1, refs1 = make_group(3, seed=2)
        a2, b2, c2, refs2 = make_group(2, m=40, n=16, k=12, seed=3)
        items = [(a, b1, c) for a, c in zip(a1, c1)]
        items += [(a, b2, c) for a, c in zip(a2, c2)]
        result = batched_gemm(items, timing="none")
        assert len(result.groups) == 2
        assert result.n_items == 5
        for c, ref in zip(c1, refs1):
            np.testing.assert_allclose(c, ref, rtol=1e-3, atol=1e-3)
        for c, ref in zip(c2, refs2):
            np.testing.assert_allclose(c, ref, rtol=1e-3, atol=1e-3)

    def test_empty_batch_rejected(self):
        with pytest.raises(ShapeError):
            batched_gemm([])

    def test_distinct_but_equal_bs_coalesce(self):
        """Content-digest grouping: copies of B land in ONE group."""
        a_blocks, b, c_blocks, refs = make_group(4, seed=7)
        items = [(a, b.copy(), c) for a, c in zip(a_blocks, c_blocks)]
        assert all(
            items[i][1] is not items[j][1]
            for i in range(4) for j in range(i + 1, 4)
        )
        result = batched_gemm(items, timing="none")
        assert len(result.groups) == 1
        assert result.groups[0].n_items == 4
        for c, ref in zip(c_blocks, refs):
            np.testing.assert_allclose(c, ref, rtol=1e-3, atol=1e-3)

    def test_identity_grouping_opt_out(self):
        """group_by="identity" restores object-identity behaviour."""
        a_blocks, b, c_blocks, _ = make_group(3, seed=8)
        items = [(a, b.copy(), c) for a, c in zip(a_blocks, c_blocks)]
        result = batched_gemm(items, timing="none", group_by="identity")
        assert len(result.groups) == 3

    def test_unknown_group_by_rejected(self):
        a_blocks, b, c_blocks, _ = make_group(2)
        items = [(a, b, c) for a, c in zip(a_blocks, c_blocks)]
        with pytest.raises(PlanError):
            batched_gemm(items, group_by="telepathy")

    def test_b_digest_distinguishes_content(self):
        b1 = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert b_digest(b1) == b_digest(b1.copy())
        b2 = b1.copy()
        b2[0, 0] += 1
        assert b_digest(b1) != b_digest(b2)
        # same bytes, different shape -> different digest
        assert b_digest(b1) != b_digest(b1.reshape(4, 3))
        # same values, different dtype -> different digest
        assert b_digest(b1) != b_digest(b1.astype(np.float64))

    def test_aggregate_metrics(self):
        a_blocks, b, c_blocks, _ = make_group(4, m=512, n=32, k=16)
        items = [(a, b, c) for a, c in zip(a_blocks, c_blocks)]
        result = batched_gemm(items, timing="analytic")
        assert isinstance(result, BatchedGemmResult)
        assert result.seconds > 0
        assert result.gflops > 0
        assert result.total_flops == 4 * GemmShape(512, 32, 16).flops


class TestGroupingWins:
    def test_grouping_beats_naive_loop(self):
        """The point of the API: one stacked call amortizes fixed costs.

        The win grows as per-item M shrinks (per-call panel fills and
        barriers dominate small items)."""
        small = [GemmShape(256, 24, 8)] * 64
        grouped = grouped_gemm(
            None, None, None,
            m_blocks=[s.m for s in small], n=24, k=8, timing="analytic",
        )
        naive = naive_batch_seconds(small)
        assert naive / grouped.seconds > 1.15

    def test_grouping_never_loses(self):
        big = [GemmShape(2048, 24, 8)] * 16
        grouped = grouped_gemm(
            None, None, None,
            m_blocks=[s.m for s in big], n=24, k=8, timing="analytic",
        )
        assert grouped.seconds <= naive_batch_seconds(big) * 1.01
