"""Structural fidelity to the paper's algorithms.

These tests pin the *data-movement structure* of each algorithm to what
Algorithms 1, 4 and 5 prescribe — which operand lives in GSM, which
streams from DDR, and how much traffic each route carries (closed-form
byte accounting against the emitted op streams).
"""

import math

import pytest

from repro.core.blocking import KPlan, MPlan, TgemmPlan, adjust_k_plan, adjust_m_plan
from repro.core.parallel_k import build_parallel_k
from repro.core.parallel_m import build_parallel_m
from repro.core.plans import OpKind
from repro.core.shapes import GemmShape
from repro.core.tgemm import build_tgemm
from repro.hw.memory import MemKind


def route_bytes(execution):
    out = {}
    for ops in execution.core_ops:
        for op in ops:
            if op.kind is OpKind.DMA and op.desc is not None:
                key = (op.desc.src, op.desc.dst)
                out[key] = out.get(key, 0) + op.desc.nbytes
    return out


class TestAlgorithm4Structure:
    """Alg. 4: B cached in GSM, A and C private per core from DDR."""

    @pytest.fixture(scope="class")
    def plan_and_routes(self, cluster, registry):
        shape = GemmShape(4096, 32, 1024)
        plan = adjust_m_plan(MPlan(), shape, cluster)
        ex = build_parallel_m(shape, cluster, plan=plan, adjust=False,
                              registry=registry)
        return shape, plan, route_bytes(ex)

    def test_b_flows_through_gsm_only(self, plan_and_routes):
        shape, plan, routes = plan_and_routes
        # B: DDR -> GSM once per (i, j) panel
        n_panels = math.ceil(shape.k / plan.k_g) * math.ceil(shape.n / plan.n_g)
        expected = shape.k * min(plan.n_g, shape.n) * 4 * (
            n_panels // math.ceil(shape.k / plan.k_g)
        )
        assert routes[(MemKind.DDR, MemKind.GSM)] == expected

    def test_a_streams_ddr_to_sm_exactly_once_per_k_panel(self, plan_and_routes):
        shape, plan, routes = plan_and_routes
        reloads = math.ceil(shape.n / plan.n_a)
        assert routes[(MemKind.DDR, MemKind.SM)] == shape.a_bytes * reloads

    def test_c_round_trips_once_per_k_panel(self, plan_and_routes):
        shape, plan, routes = plan_and_routes
        k_panels = math.ceil(shape.k / plan.k_g)
        assert routes[(MemKind.DDR, MemKind.AM)] == shape.c_bytes * k_panels
        assert routes[(MemKind.AM, MemKind.DDR)] == shape.c_bytes * k_panels

    def test_gsm_to_am_b_tile_traffic(self, plan_and_routes):
        shape, plan, routes = plan_and_routes
        # every m_a chunk re-reads its B_a tiles from GSM
        n_chunks = math.ceil(shape.m / plan.m_a)
        expected = shape.b_bytes * n_chunks
        assert routes[(MemKind.GSM, MemKind.AM)] == expected


class TestAlgorithm5Structure:
    """Alg. 5: no GSM staging of operands; B and A stream from DDR;
    reduction carried by SYNC ops, not DMA."""

    @pytest.fixture(scope="class")
    def fixture(self, cluster, registry):
        shape = GemmShape(32, 32, 8192)
        plan = adjust_k_plan(KPlan(), shape, cluster)
        ex = build_parallel_k(shape, cluster, plan=plan, adjust=False,
                              registry=registry)
        return shape, plan, ex, route_bytes(ex)

    def test_b_read_exactly_once(self, fixture):
        shape, _plan, _ex, routes = fixture
        b_to_am = routes[(MemKind.DDR, MemKind.AM)]
        assert b_to_am == shape.b_bytes

    def test_a_read_exactly_once(self, fixture):
        shape, _plan, _ex, routes = fixture
        assert routes[(MemKind.DDR, MemKind.SM)] == shape.a_bytes

    def test_no_c_dma_result_moves_in_reduction(self, fixture):
        _shape, _plan, _ex, routes = fixture
        assert (MemKind.AM, MemKind.DDR) not in routes

    def test_reduction_sync_count(self, fixture):
        shape, plan, ex, _routes = fixture
        tiles = (
            math.ceil(shape.m / plan.m_a) * math.ceil(shape.n / plan.n_a)
        )
        assert ex.n_syncs == tiles


class TestAlgorithm1Structure:
    """Alg. 1: A staged through GSM; B and C direct to the worker's AM."""

    @pytest.fixture(scope="class")
    def fixture(self, cluster, registry):
        shape = GemmShape(1024, 32, 1024)
        plan = TgemmPlan()
        ex = build_tgemm(shape, cluster, plan=plan, registry=registry)
        return shape, plan, route_bytes(ex)

    def test_a_panel_bytes(self, fixture):
        shape, _plan, routes = fixture
        assert routes[(MemKind.DDR, MemKind.GSM)] == shape.a_bytes

    def test_a_sm_bytes_equal_panel_bytes(self, fixture):
        """Each A_g element is read into SM exactly once (single strip)."""
        shape, _plan, routes = fixture
        assert routes[(MemKind.GSM, MemKind.SM)] == shape.a_bytes

    def test_b_reread_per_m_panel(self, fixture):
        shape, plan, routes = fixture
        m_panels = math.ceil(shape.m / plan.m_g)
        ddr_am = routes[(MemKind.DDR, MemKind.AM)]
        expected_b = shape.b_bytes * m_panels
        k_panels = math.ceil(shape.k / plan.k_g)
        expected_c = shape.c_bytes * k_panels
        assert ddr_am == expected_b + expected_c

    def test_paper_padding_is_time_not_traffic(self, fixture):
        """Implicit padding costs FMAC issue slots, not DMA bytes: all
        transfers carry true-N geometry."""
        shape, _plan, routes = fixture
        total = sum(routes.values())
        # A once through GSM and once to SM, B and C as accounted above
        assert total < 4 * (shape.a_bytes + shape.b_bytes + shape.c_bytes) * 2
