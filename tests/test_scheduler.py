"""Dependence analysis and the modulo scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.hw.config import LatencyConfig
from repro.isa.instructions import Affine, Instr, MemRef, Opcode, fma
from repro.isa.program import build_dependences, recurrence_mii
from repro.isa.scheduler import (
    Schedule,
    resource_mii,
    schedule_loop,
    schedule_straightline,
    verify_schedule,
)
from repro.isa.units import DEFAULT_UNITS, UnitClass

LAT = LatencyConfig()


def bload(ku, nn, k_u=1):
    return Instr(
        Opcode.VLDW,
        dsts=(f"vb{ku}_{nn}",),
        mem=MemRef("B", Affine(ku, k_u), Affine(nn * 32)),
    )


class TestDependences:
    def test_raw_edge(self):
        instrs = [bload(0, 0), fma("vc", "va", "vb0_0")]
        edges = build_dependences(instrs, LAT, loop=False)
        raw = [e for e in edges if e.kind == "raw"]
        assert len(raw) == 1
        assert raw[0].src == 0 and raw[0].dst == 1
        assert raw[0].latency == LAT.t_vldw

    def test_war_edge_has_writeback_slack(self):
        # fma reads vb0_0, then a load overwrites it: the load may issue
        # 1 - t_vldw cycles relative to the read
        instrs = [fma("vc", "va", "vb0_0"), bload(0, 0)]
        edges = build_dependences(instrs, LAT, loop=False)
        war = [e for e in edges if e.kind == "war"]
        assert war and war[0].latency == 1 - LAT.t_vldw

    def test_waw_edge(self):
        instrs = [bload(0, 0), bload(0, 0)]
        edges = build_dependences(instrs, LAT, loop=False)
        assert any(e.kind == "waw" for e in edges)

    def test_accumulator_self_edge_in_loops(self):
        instrs = [fma("vc", "va", "vb")]
        edges = build_dependences(instrs, LAT, loop=True)
        self_edges = [e for e in edges if e.src == e.dst == 0 and e.distance == 1]
        assert any(e.latency == LAT.t_fma for e in self_edges)

    def test_recurrence_mii_from_accumulator(self):
        instrs = [fma("vc", "va", "vb")]
        edges = build_dependences(instrs, LAT, loop=True)
        assert recurrence_mii(edges) == LAT.t_fma

    def test_memory_conflict_store_then_load(self):
        store = Instr(
            Opcode.VSTW, srcs=("v0",), mem=MemRef("C", Affine(0), Affine(0))
        )
        load = Instr(
            Opcode.VLDW, dsts=("v1",), mem=MemRef("C", Affine(0), Affine(0))
        )
        edges = build_dependences([store, load], LAT, loop=False)
        assert any(e.kind == "mem" for e in edges)


class TestResourceMii:
    def test_fmac_bound(self):
        instrs = [fma(f"vc{i}", "va", "vb") for i in range(9)]
        assert resource_mii(instrs, DEFAULT_UNITS) == 3  # 9 FMAs / 3 pipes

    def test_single_unit_bound(self):
        instrs = [
            Instr(Opcode.SVBCAST, dsts=(f"v{i}",), srcs=("s0",)) for i in range(4)
        ]
        assert resource_mii(instrs, DEFAULT_UNITS) == 4  # 1 broadcast slot


class TestScheduleLoop:
    def test_independent_fmas_reach_resource_mii(self):
        # 6 independent accumulators -> ResMII 2, RecMII 4 -> II = 4
        body = [fma(f"vc{i}", f"va{i}", f"vb{i}") for i in range(6)]
        sched = schedule_loop(body, LAT)
        assert sched.ii == LAT.t_fma

    def test_many_independent_fmas_saturate_pipes(self):
        body = [fma(f"vc{i}", f"va{i}", f"vb{i}") for i in range(12)]
        sched = schedule_loop(body, LAT)
        assert sched.ii == 4  # 12 / 3 pipes

    def test_empty_body_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_loop([], LAT)

    def test_total_cycles_composition(self):
        body = [fma(f"vc{i}", f"va{i}", f"vb{i}") for i in range(12)]
        sched = schedule_loop(body, LAT)
        one = sched.total_cycles(1, LAT)
        ten = sched.total_cycles(10, LAT)
        assert ten == one + 9 * sched.ii

    def test_verify_is_run_on_result(self):
        body = [bload(0, 0), fma("vc", "va", "vb0_0"), Instr(Opcode.SBR)]
        sched = schedule_loop(body, LAT)
        verify_schedule(sched, LAT)  # no raise

    def test_stages(self):
        body = [fma(f"vc{i}", f"va{i}", f"vb{i}") for i in range(3)]
        sched = schedule_loop(body, LAT)
        assert sched.stages >= 1


class TestScheduleStraightline:
    def test_chain_respects_latency(self):
        instrs = [
            Instr(Opcode.SLDH, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(0))),
            Instr(Opcode.SFEXTS32L, dsts=("sl0",), srcs=("s0",)),
            Instr(Opcode.SVBCAST, dsts=("va0",), srcs=("sl0",)),
        ]
        sched = schedule_straightline(instrs, LAT)
        assert sched.times[1] >= sched.times[0] + LAT.t_sld
        assert sched.times[2] >= sched.times[1] + LAT.t_sfext

    def test_resource_conflict_serializes(self):
        instrs = [
            Instr(Opcode.SVBCAST, dsts=(f"v{i}",), srcs=("s0",)) for i in range(3)
        ]
        # 's0' must be defined for reads; give it a producer
        producer = Instr(
            Opcode.SLDH, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(0))
        )
        sched = schedule_straightline([producer, *instrs], LAT)
        bcast_times = sorted(sched.times[1:])
        assert len(set(bcast_times)) == 3  # one broadcast slot

    def test_empty_ok(self):
        sched = schedule_straightline([], LAT)
        assert sched.total_cycles(1, LAT) == 0


class TestVerify:
    def test_catches_dependence_violation(self):
        body = [bload(0, 0), fma("vc", "va", "vb0_0")]
        sched = schedule_loop(body, LAT)
        broken = Schedule(
            sched.instrs, [0, 0], sched.assignments, sched.ii, sched.edges,
            sched.units,
        )
        with pytest.raises(ScheduleError):
            verify_schedule(broken, LAT)

    def test_catches_resource_conflict(self):
        body = [fma("vc0", "va", "vb"), fma("vc1", "va", "vb")]
        sched = schedule_loop(body, LAT)
        broken = Schedule(
            sched.instrs,
            sched.times,
            [(UnitClass.VFMAC, 0), (UnitClass.VFMAC, 0)],
            sched.ii,
            [],
            sched.units,
        )
        broken.times = [0, 0]
        with pytest.raises(ScheduleError):
            verify_schedule(broken, LAT)

    def test_catches_wrong_unit(self):
        body = [fma("vc", "va", "vb")]
        sched = schedule_loop(body, LAT)
        broken = Schedule(
            sched.instrs, sched.times, [(UnitClass.SLS, 0)], sched.ii, [],
            sched.units,
        )
        with pytest.raises(ScheduleError):
            verify_schedule(broken, LAT)


@settings(max_examples=30, deadline=None)
@given(
    n_acc=st.integers(1, 8),
    n_loads=st.integers(0, 4),
    seed=st.integers(0, 1000),
)
def test_random_bodies_schedule_legally(n_acc, n_loads, seed):
    """Any FMA/load mix must produce a verifiable modulo schedule with
    II >= both lower bounds."""
    import random

    rng = random.Random(seed)
    body = []
    for i in range(n_loads):
        body.append(bload(i, 0))
    for i in range(n_acc):
        vb = f"vb{rng.randrange(max(1, n_loads))}_0" if n_loads else f"vbx{i}"
        body.append(fma(f"vc{i}", f"va{i}", vb))
    body.append(Instr(Opcode.SBR))
    sched = schedule_loop(body, LAT)  # verify_schedule runs inside
    edges = build_dependences(body, LAT, loop=True)
    assert sched.ii >= resource_mii(body, DEFAULT_UNITS)
    assert sched.ii >= recurrence_mii(edges)
