"""Blocking: CMR formulas, paper defaults, solver, dynamic adjusting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import (
    KPlan,
    MPlan,
    TgemmPlan,
    adjust_k_plan,
    adjust_m_plan,
    cmr_f1,
    cmr_f2,
    cmr_f3,
    cmr_f4,
    solve_k_plan,
    solve_m_plan,
)
from repro.core.shapes import GemmShape
from repro.errors import PlanError


class TestCmrFormulas:
    def test_f1_verbatim(self):
        # Eq. 1 with hand-computed value
        num = 2 * 320 * 5888 * 96 * 8
        den = 8 * 320 * (5888 + 2 * 96) + 5888 * 96
        assert cmr_f1(320, 5888, 96, 8) == pytest.approx(num / den)

    def test_f2_verbatim(self):
        num = 2 * 320 * 864 * 96 * 8
        den = 8 * 320 * (864 + 2 * 96) + 864 * 96
        assert cmr_f2(320, 864, 96, 8) == pytest.approx(num / den)

    def test_f3_verbatim(self):
        num = 2 * 1024 * 512 * 512 * 8
        den = 8 * 512 * (1024 + 512) + 2 * 1024 * 512
        assert cmr_f3(1024, 512, 512, 8) == pytest.approx(num / den)

    def test_f4_verbatim(self):
        num = 2 * 1024 * 512 * 96 * 8
        den = 8 * 512 * (1024 + 96) + 2 * 1024 * 96
        assert cmr_f4(1024, 512, 96, 8) == pytest.approx(num / den)

    def test_cmr_increases_with_block_size(self):
        assert cmr_f2(320, 864, 96, 8) > cmr_f2(160, 864, 96, 8)
        assert cmr_f4(1024, 512, 96, 8) > cmr_f4(1024, 256, 96, 8)


class TestPaperDefaults:
    def test_tgemm_defaults_are_papers(self):
        plan = TgemmPlan()
        assert (plan.m_g, plan.k_g, plan.n_a, plan.m_s) == (512, 512, 96, 6)

    def test_m_plan_defaults_are_papers(self):
        plan = MPlan()
        assert (plan.k_g, plan.n_g, plan.m_a, plan.n_a, plan.k_a, plan.m_s) == (
            5888, 96, 320, 96, 864, 8,
        )

    def test_k_plan_defaults_are_papers(self):
        plan = KPlan()
        assert (plan.m_g, plan.n_g, plan.m_a, plan.n_a, plan.k_a, plan.m_s) == (
            1024, 512, 1024, 96, 512, 14,
        )

    def test_m_plan_fills_am_to_the_byte(self, cluster):
        """2 x 864 x 96 x 4 (B_a ping-pong) + 320 x 96 x 4 (C_a) = 768 KiB."""
        assert MPlan().am_bytes() == cluster.core.am_bytes

    def test_k_plan_fills_am_to_the_byte(self, cluster):
        assert KPlan().am_bytes() == cluster.core.am_bytes

    def test_tgemm_plan_fills_am_to_the_byte(self, cluster):
        assert TgemmPlan().am_bytes() == cluster.core.am_bytes

    def test_all_defaults_validate(self, cluster):
        TgemmPlan().validate(cluster)
        MPlan().validate(cluster)
        KPlan().validate(cluster)


class TestValidation:
    def test_oversized_am_rejected(self, cluster):
        with pytest.raises(PlanError):
            MPlan(k_a=2048).validate(cluster)

    def test_oversized_sm_rejected(self, cluster):
        with pytest.raises(PlanError):
            MPlan(m_s=64).validate(cluster)

    def test_oversized_gsm_rejected(self, cluster):
        with pytest.raises(PlanError):
            MPlan(k_g=16384).validate(cluster)

    def test_inner_exceeding_outer_rejected(self, cluster):
        with pytest.raises(PlanError):
            MPlan(k_a=8192, k_g=4096).validate(cluster)

    def test_k_plan_m_s_exceeding_m_a_rejected(self, cluster):
        with pytest.raises(PlanError):
            KPlan(m_a=8, m_s=14).validate(cluster)


class TestSolvers:
    def test_solved_m_plan_near_paper(self, cluster):
        """The CMR solver must land near the paper's 864 / 320 / 8."""
        plan = solve_m_plan(cluster)
        assert abs(plan.k_a - 864) <= 128
        assert abs(plan.m_a - 320) <= 64
        assert 6 <= plan.m_s <= 14

    def test_solved_k_plan_reasonable(self, cluster):
        plan = solve_k_plan(cluster)
        assert plan.n_a == 96
        assert 256 <= plan.k_a <= 1024
        assert plan.m_s >= 6

    def test_solver_outputs_validate(self, cluster):
        solve_m_plan(cluster).validate(cluster)
        solve_k_plan(cluster).validate(cluster)


class TestAdjustMPlan:
    def test_shrinks_to_problem(self, cluster):
        plan = adjust_m_plan(MPlan(), GemmShape(2**20, 32, 32), cluster)
        assert plan.n_a == 32 and plan.n_g == 32
        assert plan.k_a == 32 and plan.k_g == 32

    def test_regrows_parallel_dimension(self, cluster):
        plan = adjust_m_plan(MPlan(), GemmShape(2**20, 32, 32), cluster)
        assert plan.m_a > MPlan().m_a  # freed AM goes to m_a

    def test_keeps_m_s_at_least_6(self, cluster):
        for m in (64, 4096, 2**20):
            plan = adjust_m_plan(MPlan(), GemmShape(m, 32, 32), cluster)
            assert plan.m_s >= 6

    def test_tiny_m_shrinks_m_s(self, cluster):
        plan = adjust_m_plan(MPlan(), GemmShape(4, 32, 32), cluster)
        assert plan.m_s <= 4

    def test_chunks_deal_evenly(self, cluster):
        """m_a sizing must not leave the busiest core a whole extra chunk."""
        import math
        for m in (20480, 65536, 100000):
            plan = adjust_m_plan(MPlan(), GemmShape(m, 32, 20480), cluster)
            n_chunks = math.ceil(m / plan.m_a)
            assert n_chunks % cluster.n_cores == 0 or n_chunks < cluster.n_cores

    def test_keeps_am_within_capacity(self, cluster):
        plan = adjust_m_plan(MPlan(), GemmShape(2**22, 8, 8), cluster)
        assert plan.am_bytes() <= cluster.core.am_bytes


class TestAdjustKPlan:
    def test_shrinks_to_problem(self, cluster):
        plan = adjust_k_plan(KPlan(), GemmShape(32, 32, 2**20), cluster)
        assert plan.n_a == 32
        assert plan.m_a >= 32

    def test_m_s_minimizes_padding(self, cluster):
        plan = adjust_k_plan(KPlan(), GemmShape(32, 32, 2**20), cluster)
        assert plan.m_a % plan.m_s == 0
        assert plan.m_a == 32  # 4 x 8 rows, no padding

    def test_k_chunks_deal_evenly(self, cluster):
        import math
        plan = adjust_k_plan(KPlan(), GemmShape(32, 32, 20480), cluster)
        n_chunks = math.ceil(20480 / plan.k_a)
        assert n_chunks % cluster.n_cores == 0 or n_chunks < cluster.n_cores

    def test_sm_bound_respected(self, cluster):
        plan = adjust_k_plan(KPlan(), GemmShape(32, 32, 2**22), cluster)
        assert plan.sm_bytes() <= cluster.core.sm_bytes


@settings(max_examples=80, deadline=None)
@given(
    m=st.integers(1, 2**22),
    n=st.integers(1, 96),
    k=st.integers(1, 2**22),
)
def test_adjusted_plans_always_validate(m, n, k):
    """Dynamic adjusting never produces a plan violating capacities."""
    from repro.hw.config import default_machine

    cluster = default_machine().cluster
    shape = GemmShape(m, n, k)
    mp = adjust_m_plan(MPlan(), shape, cluster)
    assert mp.am_bytes() <= cluster.core.am_bytes
    assert mp.sm_bytes() <= cluster.core.sm_bytes
    assert mp.gsm_bytes() <= cluster.gsm_bytes
    assert mp.m_s <= mp.m_a and mp.n_a <= mp.n_g and mp.k_a <= mp.k_g
    kp = adjust_k_plan(KPlan(), shape, cluster)
    assert kp.am_bytes() <= cluster.core.am_bytes
    assert kp.sm_bytes() <= cluster.core.sm_bytes
    assert kp.m_s <= kp.m_a <= kp.m_g and kp.n_a <= kp.n_g
