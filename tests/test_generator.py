"""Micro-kernel auto-generation: tiling rules, budgets, cycle model, and —
most importantly — functional equivalence of the generated instruction
stream with NumPy matmul (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels.generator import generate_kernel, max_m_u, select_tiling
from repro.kernels.spec import KernelSpec


class TestTilingRules:
    def test_wide_kernel_uses_single_accumulator_copy(self, core):
        m_u, k_u = select_tiling(8, 3, 512, core)
        assert k_u == 1
        assert m_u == 8

    def test_wide_kernel_short_rows_raise_k_u(self, core):
        """m_s < t_fma: not enough rows to hide the FMAC latency."""
        _m_u, k_u = select_tiling(2, 3, 512, core)
        assert k_u > 1

    def test_narrow_kernels_use_k_u_pairs(self, core):
        for v_n in (1, 2):
            _m_u, k_u = select_tiling(6, v_n, 512, core)
            assert k_u >= 2

    def test_k_u_clamped_for_tiny_k(self, core):
        _m_u, k_u = select_tiling(6, 3, 1, core)
        assert k_u == 1 or k_u <= 2

    def test_register_budget_formula(self, core):
        # v_n=3, k_u=1: (60 - 3) / 4 = 14 rows max
        assert max_m_u(3, 1, core) == 14
        # v_n=2, k_u=2: (60 - 4) / 6 = 9
        assert max_m_u(2, 2, core) == 9
        # v_n=1, k_u=2: (60 - 2) / 4 = 14
        assert max_m_u(1, 2, core) == 14

    def test_m_u_respects_budget(self, core):
        m_u, k_u = select_tiling(64, 2, 512, core)
        assert m_u <= max_m_u(2, k_u, core)


class TestGeneratedStructure:
    def test_registers_within_budget(self, registry, core):
        for spec in [(8, 96, 64), (6, 64, 64), (14, 32, 64), (9, 64, 64)]:
            kern = registry.ftimm(*spec)
            _sregs, vregs = kern.registers_used()
            assert vregs <= core.n_vector_regs

    def test_row_blocks_cover_m_s(self, registry):
        kern = registry.ftimm(16, 96, 64)
        assert sum(b.m_u for b in kern.blocks) == 16
        assert len(kern.blocks) == 2  # 14 + 2

    def test_ii_matches_paper_table1(self, registry):
        kern = registry.ftimm(8, 96, 512)
        assert kern.ii == 8  # II = m_u when m_s >= t_fma

    def test_ii_matches_paper_table2(self, registry):
        kern = registry.ftimm(6, 64, 512)
        assert kern.ii == 8  # 24 FMAs over 3 pipes

    def test_k_padding(self, registry):
        kern = registry.ftimm(6, 64, 33)  # k_u = 2 -> padded to 34
        assert kern.compute_k == 34

    def test_forced_tiling_honored(self, core):
        kern = generate_kernel(
            KernelSpec(6, 96, 64), core, force_m_u=6, force_k_u=1,
            allow_block_adjust=False,
        )
        assert kern.blocks[0].m_u == 6
        assert kern.blocks[0].k_u == 1

    def test_bad_k_u_rejected(self, core):
        with pytest.raises(KernelError):
            generate_kernel(KernelSpec(6, 96, 64), core, force_k_u=3)

    def test_over_budget_tiling_rejected(self, core):
        with pytest.raises(KernelError):
            generate_kernel(KernelSpec(32, 96, 64), core, force_m_u=32, force_k_u=2)

    def test_pad_n_below_n_rejected(self, core):
        with pytest.raises(KernelError):
            generate_kernel(KernelSpec(6, 96, 64), core, pad_n_to=64)


class TestCycleModel:
    def test_cycles_grow_with_k(self, registry):
        assert registry.ftimm(8, 96, 512).cycles > registry.ftimm(8, 96, 64).cycles

    def test_efficiency_peaks_match_paper(self, registry):
        """The headline Fig. 3 peaks, asserted coarsely here (the fig3
        experiment asserts tightly)."""
        assert registry.ftimm(12, 96, 512).efficiency > 0.93
        assert registry.ftimm(12, 64, 512).efficiency > 0.90
        assert 0.55 < registry.ftimm(14, 32, 512).efficiency < 2 / 3

    def test_broadcast_ceiling_for_narrow_kernels(self, registry):
        """No n_a <= 32 kernel may beat the 66.7% broadcast bound."""
        for m in (4, 8, 12, 14):
            assert registry.ftimm(m, 32, 512).efficiency <= 2 / 3 + 1e-9

    def test_gflops_consistent_with_cycles(self, registry, core):
        kern = registry.ftimm(8, 96, 512)
        expected = kern.flops / (kern.cycles / core.clock_hz) / 1e9
        assert kern.gflops == pytest.approx(expected)

    def test_apply_shape_check(self, registry):
        kern = registry.ftimm(4, 32, 16)
        with pytest.raises(KernelError):
            kern.apply(
                np.zeros((4, 17), np.float32),
                np.zeros((16, 32), np.float32),
                np.zeros((4, 32), np.float32),
            )


def check_kernel_correct(kern, seed=0):
    m, n, k = kern.spec.m_s, kern.spec.n_a, kern.spec.k_a
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    c0 = rng.standard_normal((m, n)).astype(np.float32)
    c_np = c0.copy()
    kern.apply(a, b, c_np)
    c_isa = c0.copy()
    kern.apply_interpreted(a, b, c_isa)
    np.testing.assert_allclose(c_isa, c_np, rtol=1e-4, atol=1e-4)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "m,n,k",
        [(8, 96, 32), (6, 64, 16), (14, 32, 16), (1, 1, 1), (16, 96, 32),
         (3, 48, 7), (2, 96, 9), (9, 80, 24), (5, 17, 11), (12, 33, 8)],
    )
    def test_interpreter_equals_numpy(self, registry, m, n, k):
        check_kernel_correct(registry.ftimm(m, n, k))

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 16),
        n=st.integers(1, 96),
        k=st.integers(1, 24),
        seed=st.integers(0, 99),
    )
    def test_property_generated_code_is_matmul(self, m, n, k, seed):
        """The auto-generated instruction stream, executed on the register
        machine, computes exactly C += A @ B for arbitrary shapes."""
        from repro.hw.config import default_machine

        core = default_machine().cluster.core
        from repro.kernels.registry import registry_for

        kern = registry_for(core).ftimm(m, n, k)
        check_kernel_correct(kern, seed)
