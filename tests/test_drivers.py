"""The three algorithm drivers: functional correctness (including
property-based shape fuzzing), capacity accounting and stream structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel_k import build_parallel_k
from repro.core.parallel_m import build_parallel_m
from repro.core.plans import OpKind
from repro.core.shapes import GemmShape
from repro.core.tgemm import build_tgemm
from repro.executor.functional import run_functional

from conftest import assert_gemm_close, make_operands

BUILDERS = {
    "tgemm": build_tgemm,
    "parallel_m": build_parallel_m,
    "parallel_k": build_parallel_k,
}


def run_check(builder, shape, cluster, registry, seed=0):
    data, ref = make_operands(shape, seed)
    ex = builder(shape, cluster, data=data, registry=registry)
    report = run_functional(ex)
    assert_gemm_close(data.c, ref, shape.k)
    return ex, report


class TestTgemmCorrectness:
    @pytest.mark.parametrize(
        "m,n,k",
        [
            (6, 96, 512),      # exactly one kernel tile
            (100, 32, 70),     # remainders everywhere
            (512, 96, 512),    # exact block multiples
            (513, 97, 513),    # one past the blocks; N > 96 (two strips)
            (1, 1, 1),         # degenerate
            (600, 200, 520),   # multi-strip multi-panel
            (7, 5, 3),
        ],
    )
    def test_functional(self, cluster, registry, m, n, k):
        run_check(build_tgemm, GemmShape(m, n, k), cluster, registry)

    def test_single_strip_uses_one_compute_core(self, cluster, registry):
        """N <= 96: TGEMM's parallel loop degenerates to one core — the
        paper's problem 2."""
        ex = build_tgemm(GemmShape(512, 96, 512), cluster, registry=registry)
        kernels_by_core = [
            sum(op.kind is OpKind.KERNEL for op in ops) for ops in ex.core_ops
        ]
        assert kernels_by_core[0] > 0
        assert all(c == 0 for c in kernels_by_core[1:])

    def test_wide_n_spreads_over_cores(self, cluster, registry):
        ex = build_tgemm(GemmShape(512, 96 * 4, 512), cluster, registry=registry)
        busy = sum(
            any(op.kind is OpKind.KERNEL for op in ops) for ops in ex.core_ops
        )
        assert busy == 4


class TestParallelMCorrectness:
    @pytest.mark.parametrize(
        "m,n,k",
        [
            (320, 96, 864),      # exactly the default blocks
            (100, 32, 70),
            (3000, 17, 40),
            (1000, 96, 900),
            (8, 96, 8),          # fewer rows than m_s * cores
            (2561, 1, 1),
            (640, 48, 1728),
        ],
    )
    def test_functional(self, cluster, registry, m, n, k):
        run_check(build_parallel_m, GemmShape(m, n, k), cluster, registry)

    def test_all_cores_compute_for_large_m(self, cluster, registry):
        ex = build_parallel_m(GemmShape(4000, 32, 64), cluster, registry=registry)
        kernels_by_core = [
            sum(op.kind is OpKind.KERNEL for op in ops) for ops in ex.core_ops
        ]
        assert all(c > 0 for c in kernels_by_core)

    def test_capacity_peaks_within_limits(self, cluster, registry):
        ex = build_parallel_m(GemmShape(4000, 96, 2000), cluster, registry=registry)
        assert ex.meta["peak_am"] <= cluster.core.am_bytes
        assert ex.meta["peak_sm"] <= cluster.core.sm_bytes
        assert ex.meta["peak_gsm"] <= cluster.gsm_bytes

    def test_no_adjust_uses_given_plan(self, cluster, registry):
        from repro.core.blocking import MPlan

        plan = MPlan()
        ex = build_parallel_m(
            GemmShape(320, 96, 864), cluster, plan=plan, registry=registry,
            adjust=False,
        )
        assert ex.meta["plan"] is plan


class TestParallelKCorrectness:
    @pytest.mark.parametrize(
        "m,n,k",
        [
            (32, 32, 3000),
            (50, 20, 1100),
            (7, 3, 2000),
            (32, 32, 512),     # exactly one chunk per-ish core
            (1, 1, 5000),
            (96, 96, 4096),
            (14, 96, 1025),
        ],
    )
    def test_functional(self, cluster, registry, m, n, k):
        run_check(build_parallel_k, GemmShape(m, n, k), cluster, registry)

    def test_reduction_sync_per_tile(self, cluster, registry):
        ex = build_parallel_k(GemmShape(32, 32, 4096), cluster, registry=registry)
        assert ex.n_syncs >= 1
        syncs = [op for op in ex.core_ops[0] if op.kind is OpKind.SYNC]
        assert all(op.sync_seconds > 0 for op in syncs)

    def test_chunks_spread_over_cores(self, cluster, registry):
        ex = build_parallel_k(GemmShape(32, 32, 65536), cluster, registry=registry)
        kernels_by_core = [
            sum(op.kind is OpKind.KERNEL and op.flops > 0 for op in ops)
            for ops in ex.core_ops
        ]
        assert all(c > 0 for c in kernels_by_core)

    def test_meta_reports_active_cores(self, cluster, registry):
        ex = build_parallel_k(GemmShape(32, 32, 600), cluster, registry=registry)
        assert 1 <= ex.meta["n_active"] <= cluster.n_cores


class TestStreamStructure:
    @pytest.mark.parametrize("name", list(BUILDERS))
    def test_dma_bytes_cover_operands(self, cluster, registry, name):
        """Every operand element must be moved at least once."""
        shape = GemmShape(128, 32, 96)
        ex = BUILDERS[name](shape, cluster, registry=registry)
        assert ex.total_dma_bytes >= shape.a_bytes + min(
            shape.b_bytes, shape.c_bytes
        )

    @pytest.mark.parametrize("name", list(BUILDERS))
    def test_flops_match_problem(self, cluster, registry, name):
        """Kernel flops accounting equals 2MNK exactly (padding is time,
        not counted work)."""
        shape = GemmShape(100, 32, 70)
        ex = BUILDERS[name](shape, cluster, registry=registry)
        assert ex.total_flops == shape.flops

    @pytest.mark.parametrize("name", list(BUILDERS))
    def test_timing_only_plans_have_no_closures(self, cluster, registry, name):
        ex = BUILDERS[name](GemmShape(64, 16, 32), cluster, registry=registry)
        assert all(
            op.run is None for ops in ex.core_ops for op in ops
        )


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(1, 700),
    n=st.integers(1, 120),
    k=st.integers(1, 700),
    seed=st.integers(0, 10**6),
)
def test_property_tgemm_computes_gemm(m, n, k, seed):
    from repro.hw.config import default_machine
    from repro.kernels.registry import registry_for

    cluster = default_machine().cluster
    run_check(
        build_tgemm, GemmShape(m, n, k), cluster,
        registry_for(cluster.core), seed,
    )


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(1, 4000),
    n=st.integers(1, 96),
    k=st.integers(1, 600),
    seed=st.integers(0, 10**6),
)
def test_property_parallel_m_computes_gemm(m, n, k, seed):
    from repro.hw.config import default_machine
    from repro.kernels.registry import registry_for

    cluster = default_machine().cluster
    run_check(
        build_parallel_m, GemmShape(m, n, k), cluster,
        registry_for(cluster.core), seed,
    )


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(1, 96),
    n=st.integers(1, 96),
    k=st.integers(1, 8000),
    seed=st.integers(0, 10**6),
)
def test_property_parallel_k_computes_gemm(m, n, k, seed):
    from repro.hw.config import default_machine
    from repro.kernels.registry import registry_for

    cluster = default_machine().cluster
    run_check(
        build_parallel_k, GemmShape(m, n, k), cluster,
        registry_for(cluster.core), seed,
    )


class TestPingPongAblation:
    def test_single_buffer_correct_m(self, cluster, registry):
        shape = GemmShape(300, 32, 200)
        data, ref = make_operands(shape, seed=21)
        run_functional(
            build_parallel_m(shape, cluster, data=data, registry=registry,
                             pingpong=False)
        )
        assert_gemm_close(data.c, ref, shape.k)

    def test_single_buffer_correct_k(self, cluster, registry):
        shape = GemmShape(32, 32, 3000)
        data, ref = make_operands(shape, seed=22)
        run_functional(
            build_parallel_k(shape, cluster, data=data, registry=registry,
                             pingpong=False)
        )
        assert_gemm_close(data.c, ref, shape.k)

    def test_single_buffer_uses_less_memory(self, cluster, registry):
        shape = GemmShape(2000, 32, 512)
        on = build_parallel_m(shape, cluster, registry=registry)
        off = build_parallel_m(shape, cluster, registry=registry, pingpong=False)
        assert off.meta["peak_am"] < on.meta["peak_am"]
        assert off.meta["peak_sm"] < on.meta["peak_sm"]

    def test_single_buffer_is_slower(self, cluster, registry):
        from repro.executor.timed import run_timed

        shape = GemmShape(2000, 32, 512)
        on = run_timed(build_parallel_m(shape, cluster, registry=registry))
        off = run_timed(
            build_parallel_m(shape, cluster, registry=registry, pingpong=False)
        )
        assert off.seconds > on.seconds
