"""Full-stack FP64 GEMM (extension): drivers, tuner, timing, numerics."""

import numpy as np
import pytest

from repro.core.blocking import KPlan, MPlan, adjust_k_plan, adjust_m_plan
from repro.core.ftimm import ftimm_gemm
from repro.core.shapes import GemmShape
from repro.errors import PlanError, ShapeError


def run_f64(m, n, k, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = rng.standard_normal((m, n))
    ref = c + a @ b
    result = ftimm_gemm(m, n, k, a=a, b=b, c=c, dtype="f64", **kwargs)
    np.testing.assert_allclose(c, ref, rtol=1e-10, atol=1e-10)
    return result


class TestCorrectness:
    @pytest.mark.parametrize(
        "m,n,k",
        [(500, 32, 300), (100, 48, 70), (2000, 17, 40), (7, 3, 33)],
    )
    def test_m_parallel_f64(self, m, n, k):
        result = run_f64(m, n, k, timing="none")
        assert result.decision.plan.dtype == "f64"

    @pytest.mark.parametrize("m,n,k", [(32, 32, 3000), (48, 20, 4100)])
    def test_k_parallel_f64(self, m, n, k):
        result = run_f64(m, n, k, timing="none")
        assert result.strategy == "k"

    def test_float64_precision_actually_used(self):
        """Accumulating 1 + 1e-9 over many terms distinguishes f64 from f32."""
        m, n, k = 8, 8, 4096
        a = np.full((m, k), 1.0)
        b = np.full((k, n), 1.0 + 1e-9)
        c = np.zeros((m, n))
        ftimm_gemm(m, n, k, a=a, b=b, c=c, dtype="f64", timing="none")
        expected = k * (1.0 + 1e-9)
        assert abs(c[0, 0] - expected) < 1e-6  # f32 would be off by ~4e-6+


class TestValidation:
    def test_f32_operands_rejected_for_f64(self):
        a = np.zeros((8, 8), np.float32)
        with pytest.raises(PlanError):
            ftimm_gemm(8, 8, 8, a=a, b=a.copy(), c=a.copy(), dtype="f64")

    def test_n_above_48_rejected(self):
        with pytest.raises(ShapeError):
            ftimm_gemm(1024, 64, 64, dtype="f64", timing="analytic")

    def test_regular_shape_has_no_f64_baseline(self):
        with pytest.raises(ShapeError):
            ftimm_gemm(512, 512, 512, dtype="f64", timing="analytic")


class TestPlans:
    def test_f64_plans_respect_capacity(self, cluster):
        for shape in [GemmShape(2**18, 32, 32), GemmShape(2**18, 48, 48)]:
            plan = adjust_m_plan(MPlan(n_g=48, n_a=48, dtype="f64"), shape, cluster)
            assert plan.am_bytes() <= cluster.core.am_bytes
            assert plan.sm_bytes() <= cluster.core.sm_bytes
            assert plan.esize == 8

    def test_f64_k_plan(self, cluster):
        plan = adjust_k_plan(
            KPlan(n_g=48, n_a=48, m_a=512, m_g=512, k_a=448, m_s=8, dtype="f64"),
            GemmShape(32, 32, 2**18), cluster,
        )
        assert plan.am_bytes() <= cluster.core.am_bytes
        assert plan.n_a <= 48


class TestTiming:
    def test_f64_peak_is_half_of_f32(self):
        r32 = ftimm_gemm(20480, 32, 2048, timing="analytic")
        r64 = ftimm_gemm(20480, 32, 2048, timing="analytic", dtype="f64")
        # compute-bound single core would be exactly 2x; multi-core shapes
        # mix in bandwidth effects (f64 moves twice the bytes) — both push
        # f64 below f32
        assert r64.gflops < r32.gflops

    def test_f64_compute_bound_ratio_single_core(self):
        r32 = ftimm_gemm(20480, 32, 20480, cores=1, timing="analytic")
        r64 = ftimm_gemm(20480, 32, 20480, cores=1, timing="analytic", dtype="f64")
        assert r64.gflops == pytest.approx(r32.gflops / 2, rel=0.25)

    def test_f64_memory_bound_gflops_halved_too(self):
        """Memory-bound: same bytes/s but 8 B per element -> ~half the
        useful FLOP rate."""
        r32 = ftimm_gemm(2**20, 32, 32, timing="analytic")
        r64 = ftimm_gemm(2**20, 32, 32, timing="analytic", dtype="f64")
        assert r64.gflops == pytest.approx(r32.gflops / 2, rel=0.3)
