"""FP64 micro-kernel extension: lanes, ceilings, correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.isa.instructions import Opcode
from repro.isa.program import opcode_histogram
from repro.kernels.generator import generate_kernel
from repro.kernels.spec import KernelSpec


class TestSpec:
    def test_f64_lane_count(self):
        spec = KernelSpec(6, 32, 64, "f64")
        assert spec.lanes == 16
        assert spec.v_n == 2
        assert spec.padded_n == 32

    def test_f64_max_width_is_48(self):
        KernelSpec(6, 48, 64, "f64")
        with pytest.raises(KernelError):
            KernelSpec(6, 49, 64, "f64")

    def test_unknown_dtype_rejected(self):
        with pytest.raises(KernelError):
            KernelSpec(6, 32, 64, "f16")

    def test_np_dtype(self):
        assert KernelSpec(6, 32, 64, "f64").np_dtype == np.float64
        assert KernelSpec(6, 32, 64).np_dtype == np.float32

    def test_str_marks_precision(self):
        assert str(KernelSpec(6, 32, 64, "f64")).endswith("/f64")
        assert "/" not in str(KernelSpec(6, 32, 64))

    def test_distinct_specs_per_dtype(self):
        assert KernelSpec(6, 32, 64, "f64") != KernelSpec(6, 32, 64, "f32")


class TestGeneration:
    def test_f64_uses_sldd_not_pairs(self, core):
        kern = generate_kernel(KernelSpec(6, 32, 512, "f64"), core)
        hist = opcode_histogram(kern.program.blocks[0].body)
        assert hist.get(Opcode.SLDD, 0) > 0
        assert Opcode.SLDW not in hist
        assert Opcode.SVBCAST2 not in hist
        assert Opcode.SBALE2H not in hist

    def test_f64_full_rate_at_three_vectors(self, registry):
        kern = registry.ftimm(8, 48, 512, dtype="f64")
        assert kern.efficiency > 0.93

    def test_f64_broadcast_ceiling_two_vectors(self, registry):
        for m in (4, 6, 10, 14):
            eff = registry.ftimm(m, 32, 512, dtype="f64").efficiency
            assert eff <= 2 / 3 + 1e-9

    def test_f64_broadcast_ceiling_one_vector(self, registry):
        for m in (4, 8, 12):
            eff = registry.ftimm(m, 16, 512, dtype="f64").efficiency
            assert eff <= 1 / 3 + 1e-9

    def test_f64_gflops_relative_to_f64_peak(self, registry, core):
        kern = registry.ftimm(8, 48, 512, dtype="f64")
        f64_peak = core.n_vector_fmac * 16 * core.flops_per_lane * core.clock_hz
        assert kern.gflops <= f64_peak / 1e9
        assert kern.peak_flops_per_cycle == core.n_vector_fmac * 16 * 2

    def test_f32_unchanged_by_extension(self, registry):
        """The FP32 path must still match the paper's Fig. 3 peaks."""
        assert registry.ftimm(12, 96, 512).efficiency > 0.93
        assert registry.ftimm(14, 32, 512).efficiency <= 2 / 3


class TestCorrectness:
    @pytest.mark.parametrize(
        "m,n,k", [(8, 48, 32), (6, 32, 16), (4, 16, 8), (3, 40, 7), (1, 5, 3)]
    )
    def test_interpreter_equals_numpy_f64(self, registry, m, n, k):
        kern = registry.ftimm(m, n, k, dtype="f64")
        rng = np.random.default_rng(0)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c0 = rng.standard_normal((m, n))
        c_np = c0.copy()
        kern.apply(a, b, c_np)
        c_isa = c0.copy()
        kern.apply_interpreted(a, b, c_isa)
        np.testing.assert_allclose(c_isa, c_np, rtol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(1, 12),
        n=st.integers(1, 48),
        k=st.integers(1, 16),
        seed=st.integers(0, 99),
    )
    def test_property_f64_generated_code_is_matmul(self, m, n, k, seed):
        from repro.hw.config import default_machine
        from repro.kernels.registry import registry_for

        kern = registry_for(default_machine().cluster.core).ftimm(
            m, n, k, dtype="f64"
        )
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        expected = c + a @ b
        kern.apply_interpreted(a, b, c)
        np.testing.assert_allclose(c, expected, rtol=1e-11, atol=1e-11)


class TestExperiment:
    def test_ext_fp64_claims_hold(self):
        from repro.experiments import ext_fp64

        for result in ext_fp64.run():
            for claim in result.claims:
                assert claim.holds, f"{result.exp_id}: {claim.name}"
