"""Property tests for the analytic executor's building blocks.

``pingpong_seq`` is checked against a brute-force event simulation of the
two-slot pipeline, and ``busiest_core_chunks`` against exhaustive dealing.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor.analytic import busiest_core_chunks, pingpong_seq, pingpong_uniform


def brute_force_two_slot(pairs):
    """Reference semantics: loads through a serial engine into 2 slots,
    compute serial, compute(i) needs load(i), load(i) needs slot free
    (compute(i-2) done)."""
    n = len(pairs)
    load_done = [0.0] * n
    comp_done = [0.0] * n
    for i, (load, comp) in enumerate(pairs):
        engine_free = load_done[i - 1] if i >= 1 else 0.0
        slot_free = comp_done[i - 2] if i >= 2 else 0.0
        load_done[i] = max(engine_free, slot_free) + load
        comp_free = comp_done[i - 1] if i >= 1 else 0.0
        comp_done[i] = max(load_done[i], comp_free) + comp
    return comp_done[-1] if pairs else 0.0


@settings(max_examples=100, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(0.0, 100.0, allow_nan=False),
        ),
        max_size=20,
    )
)
def test_pingpong_seq_matches_brute_force(pairs):
    assert pingpong_seq(pairs) == pytest.approx(
        brute_force_two_slot(pairs), rel=1e-12, abs=1e-12
    )


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(0, 50),
    load=st.floats(0.0, 50.0, allow_nan=False),
    comp=st.floats(0.0, 50.0, allow_nan=False),
)
def test_pingpong_uniform_matches_seq(n, load, comp):
    assert pingpong_uniform(n, load, comp) == pytest.approx(
        pingpong_seq([(load, comp)] * n), rel=1e-9, abs=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(0.0, 100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_pingpong_bounds(pairs):
    """max(total_load, total_compute) <= pingpong <= serial sum."""
    t = pingpong_seq(pairs)
    loads = sum(p[0] for p in pairs)
    comps = sum(p[1] for p in pairs)
    assert t >= max(loads, comps) - 1e-9
    assert t <= loads + comps + 1e-9


@settings(max_examples=150, deadline=None)
@given(
    total=st.integers(0, 5000),
    block=st.integers(1, 300),
    n_cores=st.integers(1, 8),
)
def test_busiest_core_chunks_matches_exhaustive(total, block, n_cores):
    n_chunks = math.ceil(total / block)
    per_core: dict[int, list[int]] = {c: [] for c in range(n_cores)}
    for idx in range(n_chunks):
        last = idx == n_chunks - 1
        size = total - idx * block if last else block
        per_core[idx % n_cores].append(size)
    expected = (
        max(per_core.values(), key=lambda ch: (sum(ch), len(ch)))
        if n_chunks
        else []
    )
    assert busiest_core_chunks(total, block, n_cores) == expected
