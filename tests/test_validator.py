"""Static program validation."""

import pytest

from repro.errors import IsaError
from repro.isa.instructions import Affine, Instr, MemRef, Opcode, fma
from repro.isa.program import KernelProgram, LoopProgram
from repro.isa.validator import validate_program


def program_of(setup=(), body=(), trip=1, teardown=()):
    return KernelProgram([LoopProgram(list(setup), list(body), trip, list(teardown))])


def vload(dst, row, col, step=0):
    return Instr(Opcode.VLDW, dsts=(dst,), mem=MemRef("B", Affine(row, step), Affine(col)))


class TestDefUse:
    def test_read_before_def_rejected(self):
        prog = program_of(body=[
            Instr(Opcode.VADDS32, dsts=("vd",), srcs=("vx", "vy")),
        ])
        with pytest.raises(IsaError, match="before definition"):
            validate_program(prog, m_s=4, k_eff=4, padded_n=32)

    def test_setup_defs_satisfy_body(self):
        prog = program_of(
            setup=[Instr(Opcode.VMOVI, dsts=("vc",), imm=0.0),
                   Instr(Opcode.VMOVI, dsts=("va",), imm=1.0)],
            body=[vload("vb", 0, 0, step=1), fma("vc", "va", "vb")],
            trip=4,
        )
        validate_program(prog, m_s=4, k_eff=4, padded_n=32)

    def test_cross_iteration_defs_allowed(self):
        """A body instruction may read a value its own iteration defines
        later in program order — supplied by the previous iteration."""
        prog = program_of(
            setup=[Instr(Opcode.VMOVI, dsts=("vc",), imm=0.0)],
            body=[
                Instr(Opcode.VADDS32, dsts=("vd",), srcs=("vc", "ve")),  # ve defined below
                Instr(Opcode.VMOVI, dsts=("ve",), imm=2.0),
            ],
            trip=2,
        )
        validate_program(prog, m_s=4, k_eff=4, padded_n=32)

    def test_teardown_read_undefined_rejected(self):
        prog = program_of(teardown=[
            Instr(Opcode.VSTW, srcs=("vz",), mem=MemRef("C", Affine(0), Affine(0))),
        ])
        with pytest.raises(IsaError, match="before definition"):
            validate_program(prog, m_s=4, k_eff=4, padded_n=32)


class TestMemoryBounds:
    def test_last_iteration_overrun_rejected(self):
        prog = program_of(body=[vload("vb", 0, 0, step=1)], trip=10)
        with pytest.raises(IsaError, match="outside"):
            validate_program(prog, m_s=4, k_eff=4, padded_n=32)  # row 9 > 3

    def test_column_overrun_rejected(self):
        prog = program_of(body=[vload("vb", 0, 16)], trip=1)
        with pytest.raises(IsaError, match="outside"):
            validate_program(prog, m_s=4, k_eff=4, padded_n=32)

    def test_f64_lanes_respected(self):
        """With 16-lane vectors, col 32 within a 48-wide tile is legal."""
        prog = program_of(body=[vload("vb", 0, 32)], trip=1)
        validate_program(prog, m_s=4, k_eff=4, padded_n=48, vlanes=16)
        with pytest.raises(IsaError):
            validate_program(prog, m_s=4, k_eff=4, padded_n=48, vlanes=32)

    def test_store_to_read_only_tile_rejected(self):
        prog = program_of(
            setup=[Instr(Opcode.VMOVI, dsts=("v0",), imm=0.0)],
            body=[Instr(Opcode.VSTW, srcs=("v0",),
                        mem=MemRef("B", Affine(0), Affine(0)))],
            trip=1,
        )
        with pytest.raises(IsaError, match="read-only"):
            validate_program(prog, m_s=4, k_eff=4, padded_n=32)

    def test_unknown_tile_rejected(self):
        prog = program_of(body=[
            Instr(Opcode.VLDW, dsts=("v0",),
                  mem=MemRef("Z", Affine(0), Affine(0))),
        ])
        with pytest.raises(IsaError, match="unknown tile"):
            validate_program(prog, m_s=4, k_eff=4, padded_n=32)


class TestGeneratedProgramsValidate:
    """The generator calls the validator itself; this re-checks externally."""

    @pytest.mark.parametrize("m,n,k", [(8, 96, 64), (14, 32, 64), (6, 64, 33)])
    def test_f32_kernels(self, registry, m, n, k):
        kern = registry.ftimm(m, n, k)
        validate_program(
            kern.program, m_s=m, k_eff=kern.compute_k,
            padded_n=kern.compute_n, vlanes=32,
        )

    def test_f64_kernel(self, registry):
        kern = registry.ftimm(8, 48, 64, dtype="f64")
        validate_program(
            kern.program, m_s=8, k_eff=kern.compute_k,
            padded_n=kern.compute_n, vlanes=16,
        )

    def test_tgemm_kernel(self, registry):
        kern = registry.tgemm(6, 32, 64)
        validate_program(
            kern.program, m_s=6, k_eff=kern.compute_k,
            padded_n=kern.compute_n, vlanes=32,
        )
