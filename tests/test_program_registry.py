"""Program containers, opcode histograms, kernel registry."""

import pytest

from repro.errors import IsaError
from repro.isa.instructions import Instr, Opcode, fma
from repro.isa.program import KernelProgram, LoopProgram, opcode_histogram
from repro.kernels.registry import KernelRegistry, registry_for
from repro.kernels.spec import KernelSpec
from repro.errors import KernelError


class TestLoopProgram:
    def test_instruction_count(self):
        body = [fma("vc", "va", "vb")]
        block = LoopProgram([], body, trip=10, teardown=[Instr(Opcode.SBR)])
        assert block.n_instructions == 10 + 1

    def test_negative_trip_rejected(self):
        with pytest.raises(IsaError):
            LoopProgram([], [], trip=-1, teardown=[])


class TestKernelProgram:
    def test_registers_used_counts_distinct(self):
        body = [fma("vc0", "va", "vb"), fma("vc1", "va", "vb")]
        prog = KernelProgram([LoopProgram([], body, 1, [])])
        sregs, vregs = prog.registers_used()
        assert sregs == 0
        assert vregs == 4  # vc0, vc1, va, vb

    def test_meta_roundtrip(self, registry):
        kern = registry.ftimm(6, 64, 64)
        assert kern.program.meta["k_u"] == 2
        assert kern.program.meta["name"] == "ftimm"

    def test_opcode_histogram(self):
        body = [fma("vc", "va", "vb"), fma("vc2", "va", "vb"), Instr(Opcode.SBR)]
        hist = opcode_histogram(body)
        assert hist[Opcode.VFMULAS32] == 2
        assert hist[Opcode.SBR] == 1


class TestKernelSpec:
    def test_v_n(self):
        assert KernelSpec(6, 96, 64).v_n == 3
        assert KernelSpec(6, 64, 64).v_n == 2
        assert KernelSpec(6, 33, 64).v_n == 2
        assert KernelSpec(6, 32, 64).v_n == 1

    def test_padded_n(self):
        assert KernelSpec(6, 33, 64).padded_n == 64
        assert KernelSpec(6, 96, 64).padded_n == 96

    def test_flops(self):
        assert KernelSpec(2, 3, 4).flops == 48

    @pytest.mark.parametrize("m,n,k", [(0, 32, 1), (1, 0, 1), (1, 97, 1), (1, 32, 0)])
    def test_invalid_specs_rejected(self, m, n, k):
        with pytest.raises(KernelError):
            KernelSpec(m, n, k)

    def test_str(self):
        assert str(KernelSpec(6, 64, 512)) == "6x64x512"


class TestRegistry:
    def test_ftimm_cached(self, core):
        reg = KernelRegistry(core)
        a = reg.ftimm(6, 64, 64)
        assert reg.ftimm(6, 64, 64) is a
        assert reg.generated_count == 1

    def test_tgemm_cached(self, core):
        reg = KernelRegistry(core)
        a = reg.tgemm(6, 64, 64)
        assert reg.tgemm(6, 64, 64) is a

    def test_distinct_specs_distinct_kernels(self, core):
        reg = KernelRegistry(core)
        assert reg.ftimm(6, 64, 64) is not reg.ftimm(6, 64, 128)

    def test_clear(self, core):
        reg = KernelRegistry(core)
        reg.ftimm(6, 64, 64)
        reg.clear()
        assert reg.generated_count == 0

    def test_registry_for_is_per_config(self, core):
        assert registry_for(core) is registry_for(core)


class TestRegistryCacheLevels:
    def test_registry_for_keyed_by_value(self, core):
        # regression: keying by id(core) let a collected config's reused id
        # hand a fresh machine another machine's kernels
        import dataclasses

        clone = dataclasses.replace(core)
        assert clone is not core
        assert registry_for(clone) is registry_for(core)

    def test_memory_only_registry(self, core):
        from repro.kernels.registry import KernelRegistry

        reg = KernelRegistry(core, disk=False)
        assert reg.disk is None
        kern = reg.ftimm(6, 64, 64)
        assert kern.cycles > 0

    def test_default_cache_dir_env(self, monkeypatch, tmp_path):
        from pathlib import Path

        from repro.kernels.registry import default_cache_dir

        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        assert default_cache_dir() == tmp_path
        for off in ("0", "off", "none", "", "  OFF "):
            monkeypatch.setenv("REPRO_KERNEL_CACHE", off)
            assert default_cache_dir() is None
        monkeypatch.delenv("REPRO_KERNEL_CACHE")
        assert default_cache_dir() == Path.home() / ".cache/repro/kernels"

    def test_memory_hit_counters(self, core, tmp_path):
        from repro.kernels.registry import KernelDiskCache, KernelRegistry
        from repro.obs import collecting

        reg = KernelRegistry(core, disk=KernelDiskCache(tmp_path))
        with collecting() as obs:
            reg.ftimm(6, 64, 64)
            reg.ftimm(6, 64, 64)
        assert obs.counter("kernels/cache/mem_miss").value == 1
        assert obs.counter("kernels/cache/mem_hit").value == 1
