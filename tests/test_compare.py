"""The experiment-data comparison tool."""

import json

from repro.analysis.compare import compare_experiments, main


def payload(y=4.0, holds=True, exp_id="figX"):
    return [
        {
            "exp_id": exp_id,
            "title": "t",
            "x_label": "x",
            "y_label": "y",
            "series": [{"label": "s", "x": [1, 2], "y": [2.0, y]}],
            "claims": [
                {"name": "c", "paper": "p", "measured": f"{y}", "holds": holds}
            ],
            "notes": [],
        }
    ]


class TestCompare:
    def test_identical_is_clean(self):
        report = compare_experiments(payload(), payload())
        assert report.clean
        assert "no changes" in report.render(0.05)

    def test_small_moves_within_tolerance_ignored(self):
        report = compare_experiments(payload(4.0), payload(4.1), tol=0.05)
        assert report.clean

    def test_large_moves_reported(self):
        report = compare_experiments(payload(4.0), payload(5.0), tol=0.05)
        assert len(report.deltas) == 1
        delta = report.deltas[0]
        assert delta.rel_change == 0.25
        assert "moved figX/s" in report.render(0.05)

    def test_claim_flip_reported(self):
        report = compare_experiments(payload(holds=True), payload(holds=False))
        assert len(report.flips) == 1
        assert "now FAILS" in report.render(0.05)

    def test_added_removed(self):
        report = compare_experiments(payload(exp_id="a"), payload(exp_id="b"))
        assert report.removed == ["a"]
        assert report.added == ["b"]

    def test_zero_baseline_move(self):
        old = payload()
        old[0]["series"][0]["y"] = [0.0, 0.0]
        report = compare_experiments(old, payload())
        assert report.deltas  # 0 -> nonzero is always a move


class TestCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(payload()))
        b.write_text(json.dumps(payload()))
        assert main([str(a), str(b)]) == 0
        assert "no changes" in capsys.readouterr().out

    def test_flip_exit_one(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(payload(holds=True)))
        b.write_text(json.dumps(payload(holds=False)))
        assert main([str(a), str(b)]) == 1

    def test_tolerance_flag(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(payload(4.0)))
        b.write_text(json.dumps(payload(4.5)))
        assert main([str(a), str(b), "--tol", "0.5"]) == 0

    def test_usage_error(self, capsys):
        assert main(["only-one.json"]) == 2


def test_real_export_self_compare(tmp_path, monkeypatch):
    from repro.analysis.tables import Claim, ExperimentResult, Series
    from repro.experiments import run_all

    class Stub:
        __name__ = "stub"

        @staticmethod
        def run():
            return [
                ExperimentResult(
                    exp_id="e", title="t", x_label="x", y_label="y",
                    series=[Series("s", [1], [1.0])],
                    claims=[Claim("c", "p", "m", True)],
                )
            ]

    monkeypatch.setattr(run_all, "MODULES", [Stub])
    js = tmp_path / "d.json"
    run_all.main([str(tmp_path / "e.md"), "--json", str(js)])
    data = json.loads(js.read_text())
    assert compare_experiments(data, data).clean
