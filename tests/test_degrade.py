"""Graceful degradation: priority classes, burn shedding, quarantine, chaos.

The contracts under test:

* ``degrade=None`` keeps the serve loop exactly as before — no degrade
  report, no priority labels, bit-identical replay;
* proactive shedding is *ordered*: loose-SLO bulk loses queue headroom
  (``class_shed``) and its burn budget (``burn_shed``) while tight-SLO
  interactive work is still admitted, and every shed carries a typed
  reason;
* the burn-driven shed fires under a genuinely burning overload mix and
  never on a light one;
* a sick cluster is quarantined, probed after its cooldown and recovered
  on a clean probe — deterministically, with every completed response
  still bit-identical to a fault-free run on the surviving clusters;
* :func:`chaos_serve` audits all of that end to end, independently of
  the server's own verification.
"""

import numpy as np
import pytest

from repro.errors import OverloadError, PlanError
from repro.faults import FaultPlan
from repro.hw.config import default_machine
from repro.obs import tracing
from repro.obs.trace import head_sample
from repro.serve import (
    BULK,
    INTERACTIVE,
    DegradePolicy,
    GemmRequest,
    HealthPolicy,
    OnlineBurn,
    PriorityClass,
    Scheduler,
    ServeConfig,
    chaos_serve,
    make_requests,
    serve,
)
from repro.core.shapes import GemmShape
from repro.serve.request import COMPLETED, FAILED, SHED


def _req(req_id=0, arrival=0.0, deadline=None, priority=None,
         shape=GemmShape(8, 8, 8)):
    rng = np.random.default_rng(req_id)
    return GemmRequest(
        req_id=req_id, arrival_s=arrival, shape=shape,
        a=rng.standard_normal((shape.m, shape.k)).astype(np.float32),
        b=rng.standard_normal((shape.k, shape.n)).astype(np.float32),
        c=rng.standard_normal((shape.m, shape.n)).astype(np.float32),
        deadline_s=deadline, priority=priority,
    )


class TestPolicy:
    def test_explicit_label_wins(self):
        pol = DegradePolicy()
        # a loose deadline would classify as bulk, but the label rules
        req = _req(deadline=1.0, priority="interactive")
        assert pol.classify(req) is pol.classes[0]

    def test_unknown_label_raises(self):
        with pytest.raises(PlanError, match="unknown priority"):
            DegradePolicy().classify(_req(priority="platinum"))

    def test_budget_classification(self):
        pol = DegradePolicy()
        assert pol.classify(_req(arrival=1.0, deadline=1.0 + 1e-3)).name \
            == "interactive"
        assert pol.classify(_req(arrival=1.0, deadline=1.0 + 5e-2)).name \
            == "bulk"
        assert pol.classify(_req(deadline=None)).name == "bulk"

    def test_validation(self):
        with pytest.raises(PlanError):
            PriorityClass("x", admit_above=0.0)
        with pytest.raises(PlanError):
            PriorityClass("x", admit_above=1.5)
        with pytest.raises(PlanError):
            DegradePolicy(classes=())
        with pytest.raises(PlanError):
            DegradePolicy(classes=(INTERACTIVE, INTERACTIVE))
        with pytest.raises(PlanError):
            DegradePolicy(burn_threshold=0.0)

    def test_default_classes_shape(self):
        assert INTERACTIVE.admit_above == 1.0 and not INTERACTIVE.burn_shed
        assert BULK.admit_above < 1.0 and BULK.burn_shed


class TestOverloadError:
    def test_reasons_are_typed(self):
        for reason in OverloadError.REASONS:
            err = OverloadError(3, 64, reason=reason)
            assert err.reason == reason
            assert err.req_id == 3 and err.capacity == 64

    def test_legacy_message_preserved(self):
        # older tooling greps for "queue full" in the error string
        assert "queue full" in str(OverloadError(1, 8))

    def test_bad_reason_rejected(self):
        with pytest.raises(ValueError):
            OverloadError(1, 8, reason="bored")


class TestOnlineBurn:
    def test_min_events_guard(self):
        burn = OnlineBurn(objective=0.99, window_s=1.0, min_events=4)
        for t in (0.1, 0.2, 0.3):
            burn.add(t, True)
        assert burn.burn_at(0.4) == 0.0
        burn.add(0.35, True)
        assert burn.burn_at(0.4) == pytest.approx(1.0 / 0.01)

    def test_window_and_fraction(self):
        burn = OnlineBurn(objective=0.9, window_s=1.0, min_events=1)
        for i in range(10):
            burn.add(i * 0.1, bad=(i < 2))  # bad at t=0.0, 0.1
        # at t=0.95 the window (−0.05, 0.95] holds all 10: 2/10 bad
        assert burn.burn_at(0.95) == pytest.approx(0.2 / 0.1)
        # at t=1.5 the window (0.5, 1.5] holds 4 events, none bad
        assert burn.burn_at(1.5) == 0.0

    def test_causal(self):
        burn = OnlineBurn(objective=0.9, window_s=1.0, min_events=1)
        burn.add(0.5, True)
        # events in the future of `now` are invisible
        assert burn.burn_at(0.4) == 0.0
        assert burn.burn_at(0.5) > 0.0

    def test_out_of_order_feeding(self):
        a = OnlineBurn(objective=0.9, window_s=1.0, min_events=1)
        b = OnlineBurn(objective=0.9, window_s=1.0, min_events=1)
        events = [(0.3, True), (0.1, False), (0.2, False)]
        for t, bad in events:
            a.add(t, bad)
        for t, bad in sorted(events):
            b.add(t, bad)
        assert a.burn_at(0.4) == b.burn_at(0.4)


class TestAdmissionOrdering:
    def test_no_policy_keeps_legacy_behavior(self):
        reqs = make_requests("overload", rate_rps=480_000, n_requests=60,
                             seed=3)
        cfg = ServeConfig(policy="least_loaded", queue_cap=8)
        rep = serve(reqs, cfg)
        assert rep.degrade is None
        assert all(r.priority is None for r in rep.records)
        shed = [r for r in rep.records if r.status == SHED]
        assert shed and all("queue full" in r.error for r in shed)
        # the typed reason is recorded even without a policy — the only
        # reactive one; proactive reasons need degrade
        assert all(r.shed_reason == "queue_full" for r in shed)
        assert all(r.shed_reason is None for r in rep.records
                   if r.status != SHED)

    def test_bulk_sheds_before_interactive(self):
        reqs = make_requests("overload", rate_rps=480_000, n_requests=150,
                             seed=42)
        cfg = ServeConfig(policy="least_loaded", queue_cap=64,
                          degrade=DegradePolicy(health=None))
        rep = serve(reqs, cfg)
        d = rep.degrade
        assert d is not None and d.shed_class > 0
        class_shed = [r for r in rep.records
                      if r.shed_reason == "class_shed"]
        # proactive class sheds hit bulk only — never interactive
        assert class_shed
        assert {r.priority for r in class_shed} == {"bulk"}
        # interactive work arriving after bulk started shedding is
        # still admitted and completed
        first = min(r.arrival_s for r in class_shed)
        assert any(
            r.priority == "interactive" and r.status == COMPLETED
            and r.arrival_s > first
            for r in rep.records
        )
        # every shed carries its typed reason, and the report adds up
        shed = [r for r in rep.records if r.status == SHED]
        assert all(r.shed_reason in OverloadError.REASONS for r in shed)
        assert d.shed_queue_full + d.shed_class + d.shed_burn == len(shed)
        assert sum(d.shed_by_class.values()) == len(shed)

    def test_burn_shed_fires_under_sustained_overload(self):
        reqs = make_requests("overload", rate_rps=120_000, n_requests=300,
                             seed=42, arrivals="bursty")
        cfg = ServeConfig(policy="least_loaded", queue_cap=32,
                          degrade=DegradePolicy(health=None))
        rep = serve(reqs, cfg)
        d = rep.degrade
        assert d.shed_burn > 0
        assert d.peak_burn >= d.burn_threshold
        burn_shed = [r for r in rep.records if r.shed_reason == "burn_shed"]
        assert {r.priority for r in burn_shed} == {"bulk"}

    def test_burn_shed_never_fires_on_light_load(self):
        reqs = make_requests("transformer", rate_rps=20_000, n_requests=80,
                             seed=1)
        cfg = ServeConfig(policy="least_loaded",
                          degrade=DegradePolicy(health=None))
        rep = serve(reqs, cfg)
        d = rep.degrade
        assert rep.shed == 0 and rep.failed == 0
        assert d.shed_burn == 0 and d.shed_class == 0
        assert d.peak_burn == 0.0

    def test_degraded_run_replays_bit_identical(self):
        def run():
            reqs = make_requests("overload", rate_rps=240_000,
                                 n_requests=80, seed=9, arrivals="bursty")
            cfg = ServeConfig(policy="least_loaded", queue_cap=24,
                              degrade=DegradePolicy())
            return serve(reqs, cfg)

        a, b = run(), run()
        assert a.latency_table() == b.latency_table()
        assert a.degrade.shed_by_class == b.degrade.shed_by_class
        assert [e.describe() for e in a.degrade.events] \
            == [e.describe() for e in b.degrade.events]


SICK_FIRST = (1.0, 0.0, 0.0, 0.0)


class TestQuarantine:
    def test_breaker_state_machine(self, machine):
        sched = Scheduler(
            n_clusters=2, policy="least_loaded", cold_tune_s=0.0,
            machine=machine,
            health=HealthPolicy(fault_threshold=2, cooldown_s=1e-3,
                                backoff=2.0, max_cooldown_s=4e-3),
        )
        h = sched.health[0]
        sched.note_fault(0, now=0.0)
        assert h.state == "healthy"          # one fault: below threshold
        sched.note_fault(0, now=0.1)
        assert h.state == "quarantined" and h.until_s == pytest.approx(0.101)
        # quarantined cluster is not eligible before expiry
        assert [b.idx for b in sched._eligible(0.1005)] == [1]
        assert sched.next_ready_s() == 0.0   # cluster 1 is idle
        # with the healthy cluster busy past the cooldown, the earliest
        # ready time is the quarantine expiry, not the busy horizon
        sched.backends[1].charge(0.0, 0.2)
        assert sched.next_ready_s() == pytest.approx(0.101)
        sched.backends[1].busy_until_s = 0.0
        # first selection after expiry turns it into a probe
        b = sched.route_retry(0.102, exclude={1})
        assert b.idx == 0 and h.state == "probing"
        # a fault while probing re-quarantines with backed-off cooldown
        sched.note_fault(0, now=0.102)
        assert h.state == "quarantined"
        assert h.cooldown_s == pytest.approx(2e-3)
        # ... and a clean probe recovers it
        sched.route_retry(0.105, exclude=set())
        sched.note_success(0, now=0.106)
        assert h.state == "healthy" and h.cooldown_s == 0.0
        kinds = [e.kind for e in sched.degrade_events]
        assert kinds == ["quarantine", "probe", "quarantine", "probe",
                         "recover"]

    def test_all_quarantined_never_deadlocks(self, machine):
        sched = Scheduler(
            n_clusters=2, policy="least_loaded", cold_tune_s=0.0,
            machine=machine,
            health=HealthPolicy(fault_threshold=1, cooldown_s=1.0,
                                max_cooldown_s=4.0),
        )
        sched.note_fault(0, now=0.0)
        sched.note_fault(1, now=0.0)
        assert all(h.state == "quarantined" for h in sched.health)
        # the full pool is the fallback — a batch always routes somewhere
        assert len(sched._eligible(0.1)) == 2
        assert sched.pick_backend(0.1) is not None

    def test_sick_cluster_quarantined_and_results_unaffected(self):
        def stream():
            return make_requests("overload", rate_rps=120_000,
                                 n_requests=100, seed=42)

        sick = ServeConfig(
            policy="least_loaded", queue_cap=256,
            degrade=DegradePolicy(),
            faults=FaultPlan(seed=7, bitflip_rate=1.0,
                             max_kernel_retries=0),
            cluster_fault_scale=SICK_FIRST,
            max_redispatch=2,
        )
        reqs = stream()
        rep = serve(reqs, sick)
        d = rep.degrade
        assert rep.failed == 0 and rep.completed == rep.n_requests
        assert d.faults > 0 and d.quarantines >= 1
        assert any(e.kind == "quarantine" and e.cluster == 0
                   for e in d.events)
        # completed bits are identical to a fault-free run: the sick
        # cluster changed the timeline, never the arithmetic
        clean_reqs = stream()
        serve(clean_reqs, ServeConfig(policy="least_loaded",
                                      queue_cap=256))
        by_id = {r.req_id: r for r in clean_reqs}
        for req in reqs:
            assert np.array_equal(req.c, by_id[req.req_id].c)

    def test_quarantine_recovery_round_trip_deterministic(self):
        cfg = ServeConfig(
            policy="least_loaded", queue_cap=256,
            degrade=DegradePolicy(health=HealthPolicy(
                fault_threshold=1, cooldown_s=2e-4)),
            faults=FaultPlan(seed=7, bitflip_rate=1e-3,
                             max_kernel_retries=0),
            cluster_fault_scale=SICK_FIRST,
            max_redispatch=3,
        )

        def run():
            reqs = make_requests("overload", rate_rps=120_000,
                                 n_requests=200, seed=42)
            return serve(reqs, cfg)

        rep = run()
        d = rep.degrade
        assert rep.failed == 0
        assert d.quarantines >= 2 and d.probes >= 2 and d.recoveries >= 1
        kinds = [e.kind for e in d.events]
        # the full life cycle, in timeline order: a quarantine, then a
        # probe, then a recovery
        assert kinds.index("quarantine") < kinds.index("probe") \
            < kinds.index("recover")
        # a faulted probe re-quarantines with a backed-off cooldown
        assert any(e.kind == "quarantine" and "probe faulted" in e.detail
                   for e in d.events)
        again = run()
        assert rep.latency_table() == again.latency_table()
        assert [e.describe() for e in d.events] \
            == [e.describe() for e in again.degrade.events]

    def test_scale_length_validated(self):
        reqs = make_requests("overload", rate_rps=60_000, n_requests=8,
                             seed=0)
        cfg = ServeConfig(cluster_fault_scale=(1.0, 0.0))
        with pytest.raises(PlanError, match="cluster_fault_scale"):
            serve(reqs, cfg)


class TestChaosServe:
    def test_contract_holds_under_chaos(self):
        reqs = make_requests("overload", rate_rps=120_000, n_requests=60,
                             seed=42)
        cfg = ServeConfig(
            policy="least_loaded", queue_cap=32,
            degrade=DegradePolicy(),
            faults=FaultPlan(seed=7, bitflip_rate=1.0,
                             max_kernel_retries=0),
            cluster_fault_scale=SICK_FIRST,
            max_redispatch=2,
        )
        chaos = chaos_serve(reqs, cfg)
        assert chaos.ok
        assert chaos.silent == [] and chaos.untyped == []
        assert chaos.deterministic is True
        assert "contract: OK" in chaos.describe()

    def test_inputs_left_pristine(self):
        reqs = make_requests("overload", rate_rps=120_000, n_requests=24,
                             seed=5)
        before = [r.c.copy() for r in reqs]
        chaos_serve(reqs, ServeConfig(queue_cap=64), replay=False)
        assert all(np.array_equal(b, r.c) for b, r in zip(before, reqs))

    def test_every_loss_is_typed_even_when_all_fail(self):
        reqs = make_requests("overload", rate_rps=120_000, n_requests=30,
                             seed=11)
        # every cluster is sick and the re-dispatch budget is zero:
        # everything fails, nothing silently
        cfg = ServeConfig(
            queue_cap=64,
            faults=FaultPlan(seed=3, bitflip_rate=1.0,
                             max_kernel_retries=0),
            max_redispatch=0,
        )
        chaos = chaos_serve(reqs, cfg, replay=False)
        assert chaos.untyped == [] and chaos.silent == []
        assert chaos.report.failed == chaos.report.n_requests
        assert all(r.status == FAILED for r in chaos.report.records)


class TestTraceSampling:
    def test_head_sample_deterministic_and_bounded(self):
        assert head_sample(42, 1.0) and not head_sample(42, 0.0)
        verdicts = [head_sample(k, 0.5) for k in range(2000)]
        assert verdicts == [head_sample(k, 0.5) for k in range(2000)]
        frac = sum(verdicts) / len(verdicts)
        assert 0.4 < frac < 0.6
        # different seeds decorrelate the head
        assert [head_sample(k, 0.5, seed=1) for k in range(2000)] \
            != verdicts

    def test_clean_requests_sampled_failures_kept(self):
        def spans_at(rate):
            reqs = make_requests("overload", rate_rps=120_000,
                                 n_requests=60, seed=42)
            cfg = ServeConfig(
                policy="least_loaded", queue_cap=32, trace_sample=rate,
                faults=FaultPlan(seed=3, bitflip_rate=1.0,
                                 max_kernel_retries=0),
                max_redispatch=0,
            )
            with tracing() as tracer:
                rep = serve(reqs, cfg)
            return rep, [s for s in tracer.spans
                         if s.category == "request"]

        full_rep, full_spans = spans_at(1.0)
        zero_rep, zero_spans = spans_at(0.0)
        assert zero_rep.latency_table() == full_rep.latency_table()
        # rate 0 drops exactly the clean completions; failures and SLO
        # misses always keep their spans
        must_keep = [
            r for r in zero_rep.records
            if r.status == FAILED
            or (r.status == COMPLETED and r.deadline_met is False)
        ]
        assert len(zero_spans) == len(must_keep)
        placed = [r for r in full_rep.records if r.status != SHED]
        assert len(full_spans) == len(placed)

    def test_trace_sample_validated(self):
        with pytest.raises(PlanError):
            ServeConfig(trace_sample=1.5)
