"""Hardening paths outside the fault injector.

Covers the satellites of the robustness work: the process-pool's
timeout/crash handling, quarantine of corrupt on-disk caches, and the
torn-write behaviour of the JSONL run-log.  The shared theme matches
:mod:`tests.test_faults`: degrade loudly (typed errors, ``*.bad``
quarantine files, counters) instead of crashing obscurely or silently
reusing bad state.
"""

import json
import time

import pytest

from repro.errors import PlanError, ReproError, WorkerError
from repro.obs import collecting
from repro.obs.runlog import append_record, make_record, read_records


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom on {x}")


def _sleepy(x: int) -> int:
    time.sleep(2.0)
    return x


class TestParallelMapHardening:
    def test_fn_exception_propagates_serial(self):
        from repro.parallel import parallel_map

        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2], jobs=1)

    def test_fn_exception_propagates_pool(self):
        from repro.parallel import parallel_map

        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2, 3], jobs=2)

    def test_timeout_raises_worker_error(self):
        from repro.parallel import parallel_map

        with collecting() as obs:
            with pytest.raises(WorkerError, match="crashed or hung"):
                parallel_map(
                    _sleepy, [1, 2], jobs=2, timeout=0.2, retries=0
                )
        assert obs.counter("parallel/timeouts").value >= 1

    def test_timeout_large_enough_succeeds(self):
        from repro.parallel import parallel_map

        assert parallel_map(
            _square, [2, 3, 4], jobs=2, timeout=60.0
        ) == [4, 9, 16]

    def test_breaker_forces_serial(self):
        import repro.parallel as par

        saved = (par._pool_disabled, par._consecutive_pool_failures)
        try:
            par._pool_disabled = True
            with collecting() as obs:
                assert par.parallel_map(_square, [5, 6], jobs=4) == [25, 36]
            assert obs.counter("parallel/serial_fallbacks").value >= 1
        finally:
            par._pool_disabled, par._consecutive_pool_failures = saved

    def test_breaker_trips_after_limit(self):
        import repro.parallel as par

        saved = (par._pool_disabled, par._consecutive_pool_failures)
        try:
            par._pool_disabled = False
            par._consecutive_pool_failures = 0
            for _ in range(par._BREAKER_LIMIT):
                par._note_pool_failure()
            assert par._pool_disabled
            par._pool_disabled = False
            par._note_pool_ok()
            assert par._consecutive_pool_failures == 0
        finally:
            par._pool_disabled, par._consecutive_pool_failures = saved


class TestKernelDiskCacheQuarantine:
    def test_corrupt_entry_quarantined_and_regenerated(self, tmp_path):
        from repro.hw.config import default_machine
        from repro.kernels.registry import KernelDiskCache, KernelRegistry

        core = default_machine().cluster.core
        reg = KernelRegistry(core, disk=KernelDiskCache(tmp_path))
        kern = reg.ftimm(6, 64, 64)
        entries = list(tmp_path.rglob("*.json"))
        assert len(entries) == 1
        entries[0].write_text("{ not json")

        fresh = KernelRegistry(core, disk=KernelDiskCache(tmp_path))
        with collecting() as obs:
            again = fresh.ftimm(6, 64, 64)
        assert obs.counter("kernels/cache/quarantined").value == 1
        assert list(tmp_path.rglob("*.json.bad"))
        assert again.spec == kern.spec


class TestTuningCachePersistence:
    def test_save_is_atomic_no_stray_tmp(self, tmp_path):
        from repro.core.tuning_cache import TuningCache

        path = tmp_path / "tuned.json"
        TuningCache().save(path)
        assert path.exists()
        assert json.loads(path.read_text()) == {}
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupt_file_quarantined_on_load(self, tmp_path):
        from repro.core.tuning_cache import TuningCache

        path = tmp_path / "tuned.json"
        path.write_text("{ torn write")
        with collecting() as obs:
            cache = TuningCache.load(path)
        assert len(cache) == 0
        assert obs.counter("tuner/cache/quarantined").value == 1
        assert not path.exists()
        assert (tmp_path / "tuned.json.bad").exists()

    def test_unknown_strategy_still_loud(self):
        from repro.core.tuning_cache import TuningCache

        blob = json.dumps({
            "4x4x4@8c/f32": {
                "strategy": "zeta", "plan": {}, "seconds": 1.0,
                "validated": False,
            }
        })
        with pytest.raises(PlanError, match="unknown strategy"):
            TuningCache.from_json(blob)


class TestRunlogTornWrites:
    def _record(self):
        return make_record(
            shape="8x8x8", impl="ftimm", strategy="m", cores=8,
            seconds=1e-3, gflops=1.0, efficiency=0.5, bound="ddr",
        )

    def test_invalid_line_raises_by_default(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        append_record(log, self._record())
        with log.open("a") as fh:
            fh.write('{"schema": "repro-perf/1", "torn...\n')
        with pytest.raises(ReproError, match="invalid JSON"):
            read_records(log)

    def test_skip_invalid_drops_torn_line(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        append_record(log, self._record())
        with log.open("a") as fh:
            fh.write('{"schema": "repro-perf/1", "torn...\n')
        append_record(log, self._record())
        records = read_records(log, skip_invalid=True)
        assert len(records) == 2
