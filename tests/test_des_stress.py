"""Stress/property tests of the timed executor on synthetic op graphs.

These bypass the GEMM drivers: random-but-legal op streams are generated
directly, then invariants that must hold for *any* plan are checked:

* makespan >= every core's serial compute time (single pipeline);
* makespan >= total DDR effective bytes / achieved bandwidth;
* makespan <= fully-serial execution of everything;
* sync ordering: no op after a sync can complete before every core
  reached it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plans import OpStreamBuilder
from repro.core.shapes import GemmShape
from repro.executor.timed import run_timed
from repro.hw.dma import DmaDescriptor
from repro.hw.memory import MemKind


def build_random_plan(cluster, rng, n_epochs, ops_per_epoch):
    builder = OpStreamBuilder(cluster.n_cores)
    total_cycles = [0] * cluster.n_cores
    ddr_bytes = 0
    for _epoch in range(n_epochs):
        for _ in range(ops_per_epoch):
            core = rng.randrange(cluster.n_cores)
            if rng.random() < 0.5:
                rows = rng.randrange(1, 16)
                cols = rng.randrange(16, 256)
                desc = DmaDescriptor(MemKind.DDR, MemKind.AM, rows, cols * 4)
                ddr_bytes += desc.effective_bytes(cluster.dma)
                builder.dma(core, desc, buffer="buf", slot=rng.randrange(2))
            else:
                cycles = rng.randrange(100, 5000)
                total_cycles[core] += cycles
                builder.kernel(
                    core, cycles, cycles,
                    reads=(("buf", rng.randrange(2)),),
                )
        builder.sync(tag="epoch")
    return builder.finish(GemmShape(1, 1, 1), "stress", cluster), total_cycles, ddr_bytes


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_epochs=st.integers(1, 4),
    ops_per_epoch=st.integers(1, 30),
)
def test_makespan_bounds(seed, n_epochs, ops_per_epoch):
    import random

    from repro.hw.config import default_machine

    cluster = default_machine().cluster
    rng = random.Random(seed)
    plan, total_cycles, ddr_bytes = build_random_plan(
        cluster, rng, n_epochs, ops_per_epoch
    )
    result = run_timed(plan)
    clock = cluster.core.clock_hz

    # lower bound: busiest compute pipeline
    assert result.seconds >= max(total_cycles) / clock - 1e-12
    # lower bound: DDR port
    achieved = cluster.ddr_bandwidth * cluster.dma.ddr_efficiency
    assert result.seconds >= ddr_bytes / achieved - 1e-9
    # upper bound: everything fully serialized (compute + DMA at the
    # per-channel cap + per-op startup + barriers)
    n_dma = sum(
        1 for ops in plan.core_ops for op in ops if op.desc is not None
    )
    serial = (
        sum(total_cycles) / clock
        + ddr_bytes / min(achieved, cluster.dma.channel_bandwidth)
        + n_dma * cluster.dma.startup_cycles / clock
        + plan.n_syncs * cluster.barrier_cycles / clock
    )
    assert result.seconds <= serial + 1e-9


def test_sync_orders_epochs(cluster):
    """An op after a sync cannot start before slow work in the epoch
    before it finished, on any core."""
    builder = OpStreamBuilder(cluster.n_cores)
    slow_cycles = 1_000_000
    builder.kernel(0, slow_cycles, 1)          # core 0: slow epoch-0 work
    builder.sync(tag="gate")
    builder.kernel(1, 100, 1)                   # core 1: epoch-1 work
    plan = builder.finish(GemmShape(1, 1, 1), "sync-test", cluster)
    result = run_timed(plan)
    min_time = (slow_cycles + cluster.barrier_cycles + 100) / cluster.core.clock_hz
    assert result.seconds >= min_time - 1e-12


def test_pingpong_dependency_allows_overlap(cluster):
    """With two slots, DMA(i+1) overlaps kernel(i): total << serial."""
    builder = OpStreamBuilder(cluster.n_cores)
    n_iters = 16
    kernel_cycles = 200_000
    desc = DmaDescriptor(MemKind.GSM, MemKind.AM, rows=64, row_bytes=4096)
    for i in range(n_iters):
        slot = i % 2
        builder.dma(0, desc, buffer="B", slot=slot)
        builder.kernel(0, kernel_cycles, 1, reads=(("B", slot),))
    plan = builder.finish(GemmShape(1, 1, 1), "pp", cluster)
    result = run_timed(plan)
    clock = cluster.core.clock_hz
    compute_total = n_iters * kernel_cycles / clock
    dma_each = desc.nbytes / cluster.gsm_bandwidth
    serial = compute_total + n_iters * dma_each
    # compute dominates; DMA must hide almost entirely behind it
    assert result.seconds < serial
    assert result.seconds == pytest.approx(
        compute_total + dma_each
        + cluster.dma.startup_cycles / clock, rel=0.05,
    )


def test_single_slot_serializes(cluster):
    """With one slot, each DMA waits for the previous consumer: no overlap."""
    builder = OpStreamBuilder(cluster.n_cores)
    n_iters = 8
    kernel_cycles = 200_000
    desc = DmaDescriptor(MemKind.GSM, MemKind.AM, rows=64, row_bytes=4096)
    for _ in range(n_iters):
        builder.dma(0, desc, buffer="B", slot=0)
        builder.kernel(0, kernel_cycles, 1, reads=(("B", 0),))
    plan = builder.finish(GemmShape(1, 1, 1), "serial", cluster)
    result = run_timed(plan)
    clock = cluster.core.clock_hz
    dma_each = desc.nbytes / cluster.gsm_bandwidth + cluster.dma.startup_cycles / clock
    expected = n_iters * (kernel_cycles / clock + dma_each)
    assert result.seconds == pytest.approx(expected, rel=0.02)


def test_empty_plan(cluster):
    builder = OpStreamBuilder(cluster.n_cores)
    plan = builder.finish(GemmShape(1, 1, 1), "empty", cluster)
    result = run_timed(plan)
    assert result.seconds == 0.0


def test_sync_only_plan(cluster):
    builder = OpStreamBuilder(cluster.n_cores)
    builder.sync(tag="only")
    plan = builder.finish(GemmShape(1, 1, 1), "sync-only", cluster)
    result = run_timed(plan)
    assert result.seconds == pytest.approx(
        cluster.barrier_cycles / cluster.core.clock_hz
    )


def test_long_stream_window(cluster):
    """Streams longer than the in-flight window still complete correctly."""
    builder = OpStreamBuilder(cluster.n_cores)
    n = 400  # well past the 128-op window
    for i in range(n):
        builder.kernel(0, 1000, 1)
    plan = builder.finish(GemmShape(1, 1, 1), "long", cluster)
    result = run_timed(plan)
    assert result.seconds == pytest.approx(
        n * 1000 / cluster.core.clock_hz
    )
