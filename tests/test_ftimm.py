"""End-to-end public API: ftimm_gemm / tgemm_gemm / gemm."""

import numpy as np
import pytest

from repro.core.ftimm import ftimm_gemm, gemm, tgemm_gemm
from repro.core.shapes import GemmShape
from repro.errors import PlanError

from conftest import assert_gemm_close, make_operands


class TestFunctionalEndToEnd:
    @pytest.mark.parametrize(
        "m,n,k", [(2000, 32, 300), (100, 96, 100), (40, 16, 3000), (513, 7, 13)]
    )
    def test_ftimm_computes_gemm(self, m, n, k):
        shape = GemmShape(m, n, k)
        data, ref = make_operands(shape)
        r = ftimm_gemm(m, n, k, a=data.a, b=data.b, c=data.c, timing="none")
        assert_gemm_close(data.c, ref, k)
        assert r.functional is not None
        assert r.functional.flops == shape.flops

    @pytest.mark.parametrize("m,n,k", [(700, 32, 300), (64, 120, 64)])
    def test_tgemm_computes_gemm(self, m, n, k):
        shape = GemmShape(m, n, k)
        data, ref = make_operands(shape)
        tgemm_gemm(m, n, k, a=data.a, b=data.b, c=data.c, timing="none")
        assert_gemm_close(data.c, ref, k)

    def test_partial_operands_rejected(self):
        a = np.zeros((4, 4), np.float32)
        with pytest.raises(PlanError):
            ftimm_gemm(4, 4, 4, a=a)

    def test_wrong_dtype_rejected(self):
        a = np.zeros((4, 4), np.float64)
        b = np.zeros((4, 4), np.float32)
        c = np.zeros((4, 4), np.float32)
        with pytest.raises(PlanError):
            ftimm_gemm(4, 4, 4, a=a, b=b, c=c)

    def test_wrong_shape_rejected(self):
        z = np.zeros((4, 4), np.float32)
        with pytest.raises(PlanError):
            ftimm_gemm(4, 4, 5, a=z, b=z, c=z)


class TestTimingModes:
    def test_auto_uses_des_for_small(self):
        r = ftimm_gemm(2000, 32, 64)
        assert r.timing_mode == "des"
        assert r.seconds > 0

    def test_auto_uses_analytic_for_huge(self):
        r = ftimm_gemm(2**22, 32, 32)
        assert r.timing_mode == "analytic"
        assert r.seconds > 0

    def test_explicit_modes_agree_roughly(self):
        rd = ftimm_gemm(8192, 96, 512, timing="des")
        ra = ftimm_gemm(8192, 96, 512, timing="analytic")
        assert ra.seconds == pytest.approx(rd.seconds, rel=0.25)

    def test_timing_none(self):
        r = ftimm_gemm(128, 32, 64, timing="none")
        assert r.timing is None
        with pytest.raises(PlanError):
            _ = r.seconds
        assert r.gflops == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(PlanError):
            ftimm_gemm(64, 32, 64, timing="bogus")


class TestResultFields:
    def test_result_metadata(self):
        r = ftimm_gemm(65536, 32, 32, timing="analytic")
        assert r.strategy == "m"
        assert r.n_cores == 8
        assert 0 < r.efficiency < 1
        assert r.decision is not None

    def test_cores_parameter(self):
        r1 = ftimm_gemm(65536, 32, 32, cores=1, timing="analytic")
        r8 = ftimm_gemm(65536, 32, 32, cores=8, timing="analytic")
        assert r1.n_cores == 1 and r8.n_cores == 8
        assert r8.seconds < r1.seconds

    def test_force_strategy_plumbs_through(self):
        r = ftimm_gemm(20480, 32, 20480, force_strategy="k", timing="analytic")
        assert r.strategy == "k"

    def test_adjust_false_plumbs_through(self):
        from repro.core.blocking import MPlan

        r = ftimm_gemm(65536, 32, 32, adjust=False, timing="analytic")
        assert r.decision.m_plan == MPlan()


class TestHeadlineComparisons:
    """The paper's qualitative story must hold through the public API."""

    def test_ftimm_beats_tgemm_on_type1(self):
        f = ftimm_gemm(65536, 32, 32, timing="analytic")
        t = tgemm_gemm(65536, 32, 32, timing="analytic")
        assert f.gflops > 1.5 * t.gflops

    def test_ftimm_beats_tgemm_on_type2(self):
        f = ftimm_gemm(32, 32, 65536, timing="analytic")
        t = tgemm_gemm(32, 32, 65536, timing="analytic")
        assert f.gflops > 2.0 * t.gflops

    def test_ftimm_beats_tgemm_on_type3(self):
        f = ftimm_gemm(20480, 32, 20480, timing="analytic")
        t = tgemm_gemm(20480, 32, 20480, timing="analytic")
        assert f.gflops > 3.0 * t.gflops

    def test_gemm_dispatch(self):
        assert gemm(1024, 32, 64, impl="ftimm").strategy in ("m", "k")
        assert gemm(1024, 32, 64, impl="tgemm").strategy == "tgemm"
        with pytest.raises(PlanError):
            gemm(64, 64, 64, impl="blas")
