"""The discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.hw.event_sim import AllOf, Event, Resource, Simulator


class TestEvents:
    def test_timeout_fires_at_time(self):
        sim = Simulator()
        fired = []
        sim.timeout(2.5).wait(lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_timeout_carries_value(self):
        sim = Simulator()
        seen = []
        sim.timeout(1.0, value="payload").wait(lambda ev: seen.append(ev.value))
        sim.run()
        assert seen == ["payload"]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_event_triggered_twice_raises(self):
        sim = Simulator()
        ev = sim.event("x")
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_wait_on_triggered_event_fires_immediately(self):
        sim = Simulator()
        ev = sim.event().succeed(7)
        seen = []
        ev.wait(lambda e: seen.append(e.value))
        assert seen == [7]


class TestProcesses:
    def test_process_sequences_timeouts(self):
        sim = Simulator()
        trace = []

        def proc():
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert trace == [1.0, 3.0]
        assert p.triggered and p.value == "done"

    def test_process_waits_on_other_process(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(5.0)
            return 42

        def outer():
            value = yield sim.process(inner())
            return value + 1

        p = sim.process(outer())
        sim.run()
        assert p.value == 43
        assert sim.now == 5.0

    def test_process_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield "not an event"

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def proc(name, delay):
            yield sim.timeout(delay)
            trace.append((name, sim.now))

        sim.process(proc("a", 2.0))
        sim.process(proc("b", 1.0))
        sim.run()
        assert trace == [("b", 1.0), ("a", 2.0)]


class TestAllOf:
    def test_all_of_waits_for_all(self):
        sim = Simulator()
        done = sim.all_of([sim.timeout(1.0), sim.timeout(3.0), sim.timeout(2.0)])
        times = []
        done.wait(lambda ev: times.append(sim.now))
        sim.run()
        assert times == [3.0]

    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        done = sim.all_of([sim.timeout(2.0, "x"), sim.timeout(1.0, "y")])
        sim.run()
        assert done.value == ["x", "y"]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        done = sim.all_of([])
        sim.run()
        assert done.triggered and done.value == []


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        res = Resource(sim, 1, "r")
        finish = []

        def user(name, hold):
            yield sim.process(res.use(hold))
            finish.append((name, sim.now))

        sim.process(user("a", 2.0))
        sim.process(user("b", 1.0))
        sim.run()
        assert finish == [("a", 2.0), ("b", 3.0)]  # FIFO

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, 2, "r")
        for _ in range(2):
            sim.process(res.use(2.0))
        sim.run()
        assert sim.now == 2.0

    def test_release_idle_raises(self):
        sim = Simulator()
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 0)

    def test_queue_depth_visible(self):
        sim = Simulator()
        res = Resource(sim, 1)
        res.request()
        sim.run()
        res.request()
        assert res.in_use == 1
        assert res.queued == 1


class TestSimulator:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.timeout(10.0)
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0

    def test_deterministic_tie_break(self):
        order1, order2 = [], []
        for order in (order1, order2):
            sim = Simulator()
            for i in range(5):
                sim.timeout(1.0, value=i).wait(
                    lambda ev, order=order: order.append(ev.value)
                )
            sim.run()
        assert order1 == order2 == [0, 1, 2, 3, 4]

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(1.0)

        sim.process(forever())
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim._schedule_at(1.0, sim.event(), None)
