"""Fault injection and the no-silent-corruption contract.

The resilience guarantee under test: a GEMM run with a ``FaultPlan``
either finishes with the *exact* bits the fault-free blocked algorithm
produces, or raises a typed :class:`~repro.errors.FaultError`.  Silent
wrong answers are the one outcome that must never occur — the chaos
sweep at the bottom asserts it wholesale, the focused tests pin down
each recovery mechanism (DMA read-back, ABFT recompute, core-failure
re-dispatch) and each loud-failure path (retry budgets, last core).
"""

import numpy as np
import pytest

from repro.core.ftimm import ftimm_gemm, tgemm_gemm
from repro.errors import (
    ConfigError,
    CoreFailureError,
    DmaTransferError,
    InputError,
)
from repro.faults import (
    NO_FAULTS,
    CoreFault,
    DegradationWindow,
    FaultInjector,
    FaultPlan,
    chaos_sweep,
)

M, N, K = 96, 32, 128


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((M, K)).astype(np.float32)
    b = rng.standard_normal((K, N)).astype(np.float32)
    return a, b


@pytest.fixture(scope="module")
def baseline(operands):
    a, b = operands
    c = np.zeros((M, N), np.float32)
    ftimm_gemm(M, N, K, a=a, b=b, c=c, timing="none")
    return c


class TestFaultPlan:
    def test_rate_bounds(self):
        with pytest.raises(ConfigError):
            FaultPlan(dma_fail_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(bitflip_rate=-0.1)

    def test_degradation_validation(self):
        with pytest.raises(ConfigError):
            DegradationWindow(2.0, 1.0, 0.5).validate()   # empty window
        with pytest.raises(ConfigError):
            FaultPlan(ddr_degradation=(DegradationWindow(0.0, 1.0, 0.0),))
        with pytest.raises(ConfigError):  # overlapping windows
            FaultPlan(ddr_degradation=(
                DegradationWindow(0.0, 2.0, 0.5),
                DegradationWindow(1.0, 3.0, 0.5),
            ))

    def test_core_fault_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(core_faults=(CoreFault(core=-1, after_ops=0),))

    def test_enabled(self):
        assert not NO_FAULTS.enabled
        assert not FaultPlan(seed=42).enabled
        assert FaultPlan(bitflip_rate=1e-3).enabled
        assert FaultPlan(core_faults=(CoreFault(0, after_ops=1),)).enabled

    def test_core_fault_for_attempt_in_order(self):
        plan = FaultPlan(core_faults=(
            CoreFault(3, after_ops=1), CoreFault(1, after_ops=2),
        ))
        assert plan.core_fault_for_attempt(0).core == 3
        assert plan.core_fault_for_attempt(1).core == 1
        assert plan.core_fault_for_attempt(2) is None


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        one = FaultInjector(FaultPlan(seed=9, dma_fail_rate=0.5), attempt=0)
        two = FaultInjector(FaultPlan(seed=9, dma_fail_rate=0.5), attempt=0)
        sites = [("dma", c, i, a) for c in range(4) for i in range(8)
                 for a in range(2)]
        assert [one.unit(*s) for s in sites] == [two.unit(*s) for s in sites]

    def test_seed_and_attempt_decorrelate(self):
        base = FaultInjector(FaultPlan(seed=9), attempt=0)
        seed = FaultInjector(FaultPlan(seed=10), attempt=0)
        attempt = FaultInjector(FaultPlan(seed=9), attempt=1)
        sites = [("x", i) for i in range(64)]
        assert [base.unit(*s) for s in sites] != [seed.unit(*s) for s in sites]
        assert [base.unit(*s) for s in sites] != [
            attempt.unit(*s) for s in sites
        ]

    def test_unit_in_range(self):
        inj = FaultInjector(FaultPlan(seed=3), attempt=0)
        vals = [inj.unit("u", i) for i in range(256)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert len(set(vals)) > 200  # actually spread out


class TestNoFaultBitIdentity:
    def test_armed_but_silent_plan_is_bit_identical(self, operands, baseline):
        a, b = operands
        c = np.zeros((M, N), np.float32)
        result = ftimm_gemm(
            M, N, K, a=a, b=b, c=c, timing="none", faults=NO_FAULTS
        )
        assert np.array_equal(c, baseline)
        assert result.faults is not None
        assert result.faults.recovered_faults == 0
        assert result.faults.injected_bitflips == 0

    def test_auto_timing_with_faults_uses_des(self, operands):
        a, b = operands
        result = ftimm_gemm(
            M, N, K, a=a, b=b, c=np.zeros((M, N), np.float32),
            faults=FaultPlan(seed=1),
        )
        assert result.timing_mode == "des"


class TestBitflipRecovery:
    def test_f32_copy_and_abft_recovery_exact(self, operands, baseline):
        a, b = operands
        c = np.zeros((M, N), np.float32)
        result = ftimm_gemm(
            M, N, K, a=a, b=b, c=c, timing="none",
            faults=FaultPlan(seed=0, bitflip_rate=8e-2),
        )
        report = result.faults
        # seed 0 at this rate deterministically exercises both guards
        assert report.injected_bitflips > 0
        assert report.copy_retries > 0
        assert report.abft_detected > 0
        assert report.abft_recomputes == report.abft_detected
        assert np.array_equal(c, baseline)

    def test_f64_abft_recovery_exact(self):
        rng = np.random.default_rng(2)
        m, n, k = 48, 16, 64
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        ref = np.zeros((m, n))
        ftimm_gemm(m, n, k, a=a, b=b, c=ref, timing="none", dtype="f64")
        c = np.zeros((m, n))
        result = ftimm_gemm(
            m, n, k, a=a, b=b, c=c, timing="none", dtype="f64",
            faults=FaultPlan(seed=1, bitflip_rate=8e-2),
        )
        assert result.faults.injected_bitflips > 0
        assert np.array_equal(c, ref)

    def test_tgemm_recovery_exact(self, operands):
        a, b = operands
        ref = np.zeros((M, N), np.float32)
        tgemm_gemm(M, N, K, a=a, b=b, c=ref, timing="none")
        c = np.zeros((M, N), np.float32)
        result = tgemm_gemm(
            M, N, K, a=a, b=b, c=c, timing="none",
            faults=FaultPlan(seed=0, bitflip_rate=8e-2),
        )
        assert result.faults.injected_bitflips > 0
        assert np.array_equal(c, ref)

    def test_same_plan_same_report(self, operands):
        a, b = operands
        plan = FaultPlan(seed=0, bitflip_rate=8e-2)
        runs = []
        for _ in range(2):
            c = np.zeros((M, N), np.float32)
            runs.append(
                ftimm_gemm(M, N, K, a=a, b=b, c=c, timing="none", faults=plan)
            )
        assert runs[0].faults == runs[1].faults


class TestCoreFailure:
    def test_functional_redispatch_matches_reduced_cluster(self, operands):
        a, b = operands
        c = np.zeros((M, N), np.float32)
        result = ftimm_gemm(
            M, N, K, a=a, b=b, c=c, timing="none",
            faults=FaultPlan(core_faults=(CoreFault(core=2, after_ops=3),)),
        )
        report = result.faults
        assert report.core_failures == 1
        assert report.redispatches == 1
        assert result.n_cores == report.final_cores
        # re-dispatch must reproduce the fault-free run on the surviving
        # cores bit-for-bit (same strategy, one fewer core)
        ref = np.zeros((M, N), np.float32)
        ftimm_gemm(
            M, N, K, a=a, b=b, c=ref, timing="none",
            cores=result.n_cores, force_strategy=result.strategy,
        )
        assert np.array_equal(c, ref)

    def test_timed_redispatch_reports_lost_time(self):
        clean = ftimm_gemm(M, N, K, timing="des")
        result = ftimm_gemm(
            M, N, K, timing="des",
            faults=FaultPlan(core_faults=(CoreFault(core=1, after_s=1e-6),)),
        )
        report = result.faults
        assert report.redispatches == 1
        assert report.lost_s > 0.0
        # the discarded work and the smaller cluster both cost time
        assert result.seconds > clean.seconds

    def test_last_core_failure_is_loud(self, operands):
        a, b = operands
        with pytest.raises(CoreFailureError):
            ftimm_gemm(
                M, N, K, a=a, b=b, c=np.zeros((M, N), np.float32),
                timing="none", cores=1,
                faults=FaultPlan(core_faults=(CoreFault(0, after_ops=1),)),
            )


class TestTimedFaults:
    def test_dma_retries_cost_simulated_time(self):
        clean = ftimm_gemm(M, N, K, timing="des")
        faulted = ftimm_gemm(
            M, N, K, timing="des",
            faults=FaultPlan(seed=0, dma_fail_rate=0.2),
        )
        report = faulted.faults
        assert report.dma_retries > 0
        assert report.dma_retry_s > 0.0
        assert faulted.seconds > clean.seconds

    def test_degradation_window_slows_ddr(self):
        clean = ftimm_gemm(M, N, K, timing="des")
        degraded = ftimm_gemm(
            M, N, K, timing="des",
            faults=FaultPlan(
                ddr_degradation=(DegradationWindow(0.0, 1.0, 0.25),)
            ),
        )
        assert degraded.seconds > clean.seconds

    def test_exhausted_dma_retries_raise_typed(self):
        with pytest.raises(DmaTransferError):
            ftimm_gemm(
                M, N, K, timing="des", faults=FaultPlan(dma_fail_rate=1.0)
            )


class TestInputValidation:
    def test_non_array(self):
        with pytest.raises(InputError):
            ftimm_gemm(4, 4, 4, a=[[1.0]], b=np.zeros((4, 4), np.float32),
                       c=np.zeros((4, 4), np.float32), timing="none")

    def test_non_2d(self):
        with pytest.raises(InputError):
            ftimm_gemm(
                4, 4, 4, a=np.zeros(16, np.float32),
                b=np.zeros((4, 4), np.float32),
                c=np.zeros((4, 4), np.float32), timing="none",
            )

    def test_wrong_dtype(self):
        with pytest.raises(InputError):
            ftimm_gemm(
                4, 4, 4, a=np.zeros((4, 4), np.float64),
                b=np.zeros((4, 4), np.float32),
                c=np.zeros((4, 4), np.float32), timing="none",
            )

    def test_shape_mismatch(self):
        with pytest.raises(InputError):
            ftimm_gemm(
                4, 4, 4, a=np.zeros((4, 5), np.float32),
                b=np.zeros((4, 4), np.float32),
                c=np.zeros((4, 4), np.float32), timing="none",
            )

    def test_nonfinite_rejected(self):
        a = np.zeros((4, 4), np.float32)
        b = np.zeros((4, 4), np.float32)
        c = np.zeros((4, 4), np.float32)
        a[1, 2] = np.nan
        with pytest.raises(InputError):
            ftimm_gemm(4, 4, 4, a=a, b=b, c=c, timing="none")
        a[1, 2] = 0.0
        b[0, 0] = np.inf
        with pytest.raises(InputError):
            ftimm_gemm(4, 4, 4, a=a, b=b, c=c, timing="none")


class TestChaosSweep:
    def test_mini_sweep_no_silence(self):
        summary = chaos_sweep(
            shapes=((24, 8, 64),),
            rates=(1e-2,),
            seeds=range(2),
            impls=("ftimm",),
            core_failures=True,
            timed_probe=False,
        )
        assert summary.ok
        assert summary.silent == []
        counts = summary.counts()
        assert sum(counts.values()) == len(summary.outcomes) > 0
        assert "SILENT" not in summary.describe() or counts.get(
            "silent", 0
        ) == 0
