"""ASCII chart rendering."""

import pytest

from repro.analysis.ascii_plot import GLYPHS, PlotConfig, render_chart
from repro.analysis.tables import ExperimentResult, Series


def simple_series():
    return [
        Series("up", [1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0]),
        Series("down", [1, 2, 3, 4], [4.0, 3.0, 2.0, 1.0]),
    ]


class TestRenderChart:
    def test_contains_glyphs_and_legend(self):
        text = render_chart(simple_series())
        assert GLYPHS[0] in text and GLYPHS[1] in text
        assert "up" in text and "down" in text

    def test_axis_ticks(self):
        text = render_chart(simple_series())
        assert "4.00" in text  # max tick
        assert "1.00" in text  # min tick

    def test_x_footer(self):
        text = render_chart(simple_series(), x_label="N")
        assert "1 .. 4" in text
        assert "(N)" in text

    def test_monotone_series_direction(self):
        """The rising series' glyph must appear above the falling series'
        glyph in the first column region and below in the last."""
        text = render_chart(simple_series(), config=PlotConfig(width=40, height=10))
        rows = [line.split("|")[1] for line in text.splitlines() if "|" in line]
        first_col = "".join(row[0] for row in rows)
        last_col = "".join(row[-1] for row in rows)
        # 'up' (*) ends high -> appears near the top of the last column
        assert last_col.strip().startswith("*") or "=" in last_col
        assert first_col.strip().startswith("o") or "=" in first_col

    def test_overlap_marker(self):
        crossing = [
            Series("a", [1, 2], [0.0, 10.0]),
            Series("b", [1, 2], [0.0, 10.0]),
        ]
        assert "=" in render_chart(crossing)

    def test_log_scale(self):
        series = [Series("s", [1, 2, 3], [1.0, 100.0, 10000.0])]
        text = render_chart(series, config=PlotConfig(log_y=True, height=8))
        assert "1.0e+04" in text

    def test_log_scale_rejects_nonpositive(self):
        series = [Series("s", [1, 2], [0.0, 1.0])]
        with pytest.raises(ValueError):
            render_chart(series, config=PlotConfig(log_y=True))

    def test_flat_series_ok(self):
        text = render_chart([Series("flat", [1, 2, 3], [5.0, 5.0, 5.0])])
        assert "flat" in text

    def test_empty_and_single_point(self):
        assert "no data" in render_chart([])
        assert "two points" in render_chart([Series("one", [1], [2.0])])

    def test_mismatched_lengths_draw_shortest(self):
        series = [
            Series("long", [1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0]),
            Series("short", [1, 2], [2.0, 2.5]),
        ]
        assert "short" in render_chart(series)


class TestRenderIntegration:
    def test_experiment_render_with_chart(self):
        result = ExperimentResult(
            exp_id="x", title="t", x_label="N", y_label="GFLOPS",
            series=simple_series(),
        )
        text = result.render(chart=True)
        assert "|" in text          # chart frame
        assert "(y = GFLOPS)" in text  # table retained

    def test_chart_skipped_for_single_point(self):
        result = ExperimentResult(
            exp_id="x", title="t", x_label="N", y_label="y",
            series=[Series("s", [1], [1.0])],
        )
        assert result.render(chart=True)  # no crash, falls back to table
