"""Dynamic adjusting: strategy selection rules (Section IV-C)."""

import pytest

from repro.core.blocking import KPlan, MPlan
from repro.core.shapes import GemmShape
from repro.core.tuner import (
    TuningDecision,
    choose_strategy,
    m_small_threshold,
    tune,
)


class TestStrategySelection:
    def test_type1_uses_m_parallel(self, cluster):
        assert choose_strategy(GemmShape(65536, 32, 32), cluster) == "m"

    def test_type2_uses_k_parallel(self, cluster):
        assert choose_strategy(GemmShape(32, 32, 65536), cluster) == "k"

    def test_type3_uses_m_parallel_per_section_4c(self, cluster):
        assert choose_strategy(GemmShape(20480, 32, 20480), cluster) == "m"

    def test_wide_n_falls_back_to_tgemm(self, cluster):
        assert choose_strategy(GemmShape(4096, 512, 4096), cluster) == "tgemm"

    def test_small_m_small_k_stays_m_parallel(self, cluster):
        # nothing is large: K-parallel's reduction isn't worth it
        assert choose_strategy(GemmShape(64, 32, 64), cluster) == "m"

    def test_threshold_scales_with_cores(self, cluster):
        assert m_small_threshold(cluster.with_cores(2)) < m_small_threshold(cluster)

    def test_boundary_just_below_threshold(self, cluster):
        m = m_small_threshold(cluster) - 1
        assert choose_strategy(GemmShape(m, 32, 2**20), cluster) == "k"

    def test_boundary_at_threshold(self, cluster):
        m = m_small_threshold(cluster)
        assert choose_strategy(GemmShape(m, 32, 2**20), cluster) == "m"


class TestTune:
    def test_tune_returns_adjusted_m_plan(self, cluster):
        d = tune(GemmShape(65536, 32, 32), cluster)
        assert d.strategy == "m"
        assert d.m_plan is not None
        assert d.m_plan.n_a == 32  # adjusted

    def test_tune_returns_adjusted_k_plan(self, cluster):
        d = tune(GemmShape(32, 32, 65536), cluster)
        assert d.strategy == "k"
        assert d.k_plan.n_a == 32

    def test_adjust_false_keeps_initial_blocks(self, cluster):
        d = tune(GemmShape(65536, 32, 32), cluster, adjust=False)
        assert d.m_plan == MPlan()

    def test_force_strategy(self, cluster):
        d = tune(GemmShape(20480, 32, 20480), cluster, force_strategy="k")
        assert d.strategy == "k"
        assert isinstance(d.k_plan, KPlan)

    def test_plan_property_dispatch(self, cluster):
        d = tune(GemmShape(65536, 32, 32), cluster)
        assert d.plan is d.m_plan

    def test_reason_is_populated(self, cluster):
        assert tune(GemmShape(65536, 32, 32), cluster).reason

    def test_tgemm_decision_for_regular(self, cluster):
        d = tune(GemmShape(4096, 4096, 4096), cluster)
        assert d.strategy == "tgemm"
        assert d.tgemm_plan is not None

    def test_decision_is_frozen(self, cluster):
        d = tune(GemmShape(65536, 32, 32), cluster)
        with pytest.raises(AttributeError):
            d.strategy = "k"

    def test_decision_type(self, cluster):
        assert isinstance(tune(GemmShape(64, 64, 64), cluster), TuningDecision)
