"""Whole-pipeline behaviour under modified hardware.

The reproduction is a *model*: changing a hardware parameter must ripple
through kernel generation, blocking, and timing in the physically
expected direction — and never break numerical correctness.  These tests
run the full stack on perturbed machines.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.blocking import MPlan, adjust_m_plan
from repro.core.ftimm import ftimm_gemm
from repro.core.shapes import GemmShape
from repro.hw.config import (
    ClusterConfig,
    DmaConfig,
    DspCoreConfig,
    LatencyConfig,
    MachineConfig,
)
from repro.kernels.generator import generate_kernel
from repro.kernels.registry import KernelRegistry
from repro.kernels.spec import KernelSpec

from conftest import assert_gemm_close, make_operands


def make_machine(**core_overrides) -> MachineConfig:
    core = dataclasses.replace(DspCoreConfig(), **core_overrides)
    cluster = dataclasses.replace(ClusterConfig(), core=core)
    return MachineConfig(cluster=cluster).validate()


def machine_with_cluster(**cluster_overrides) -> MachineConfig:
    cluster = dataclasses.replace(ClusterConfig(), **cluster_overrides)
    return MachineConfig(cluster=cluster).validate()


class TestSmallScratchpads:
    def test_half_am_shrinks_blocks_and_stays_correct(self):
        machine = make_machine(am_bytes=384 * 1024)
        shape = GemmShape(600, 32, 400)
        plan = adjust_m_plan(MPlan(k_a=256), shape, machine.cluster)
        assert plan.am_bytes() <= 384 * 1024
        data, ref = make_operands(shape, seed=1)
        ftimm_gemm(
            shape.m, shape.n, shape.k, machine=machine,
            a=data.a, b=data.b, c=data.c, timing="none",
        )
        assert_gemm_close(data.c, ref, shape.k)

    def test_tiny_sm_caps_kernel_rows(self):
        machine = make_machine(sm_bytes=8 * 1024)
        shape = GemmShape(2048, 32, 512)
        plan = adjust_m_plan(MPlan(), shape, machine.cluster)
        assert plan.sm_bytes() <= 8 * 1024

    def test_paper_defaults_reject_smaller_am(self):
        machine = make_machine(am_bytes=512 * 1024)
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            MPlan().validate(machine.cluster)


class TestLatencyChanges:
    def test_higher_fma_latency_hurts_short_kernels_only(self):
        slow = dataclasses.replace(LatencyConfig(), t_fma=8)
        machine = make_machine(latencies=slow)
        core = machine.cluster.core
        # a saturated kernel stays near peak (II is resource-bound)
        big = generate_kernel(KernelSpec(12, 96, 512), core)
        assert big.efficiency > 0.9
        # a 1-row naive kernel cannot hide 8 cycles with 3 FMAs in flight
        naive = generate_kernel(
            KernelSpec(1, 96, 512), core,
            force_m_u=1, force_k_u=1, allow_block_adjust=False,
        )
        assert naive.ii >= 8  # recurrence-bound
        auto = generate_kernel(KernelSpec(1, 96, 512), core)
        assert auto.efficiency > naive.efficiency

    def test_kernels_still_correct_with_odd_latencies(self):
        weird = dataclasses.replace(
            LatencyConfig(), t_fma=7, t_vldw=5, t_bcast=3, t_sld=4
        )
        machine = make_machine(latencies=weird)
        kern = generate_kernel(KernelSpec(6, 64, 32), machine.cluster.core)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 32)).astype(np.float32)
        b = rng.standard_normal((32, 64)).astype(np.float32)
        c1 = np.zeros((6, 64), np.float32)
        c2 = np.zeros((6, 64), np.float32)
        kern.apply(a, b, c1)
        kern.apply_interpreted(a, b, c2)
        np.testing.assert_allclose(c1, c2, rtol=1e-4, atol=1e-4)


class TestComputeThroughputChanges:
    def test_fewer_fmac_pipes_lower_gflops_not_efficiency_units(self):
        machine = make_machine(n_vector_fmac=1)
        core = machine.cluster.core
        assert core.peak_flops == pytest.approx(345.6e9 / 3)
        kern = generate_kernel(KernelSpec(8, 96, 512), core)
        # efficiency is relative to the (smaller) peak: still high
        assert kern.efficiency > 0.85
        assert kern.gflops < 130

    def test_faster_clock_scales_gflops(self):
        fast = make_machine(clock_hz=3.6e9)
        slow = make_machine(clock_hz=1.8e9)
        kf = generate_kernel(KernelSpec(8, 96, 512), fast.cluster.core)
        ks = generate_kernel(KernelSpec(8, 96, 512), slow.cluster.core)
        assert kf.gflops == pytest.approx(2 * ks.gflops)
        assert kf.cycles == ks.cycles  # cycle counts are clock-independent


class TestBandwidthChanges:
    def test_double_ddr_speeds_memory_bound_shapes(self):
        fast = machine_with_cluster(ddr_bandwidth=85.2e9)
        base = MachineConfig().validate()
        shape = (2**20, 32, 32)  # memory-bound type 1
        t_fast = ftimm_gemm(*shape, machine=fast, timing="analytic").seconds
        t_base = ftimm_gemm(*shape, machine=base, timing="analytic").seconds
        assert t_fast < t_base * 0.75

    def test_compute_bound_shape_ignores_ddr(self):
        """On 8 cores every N <= 96 shape is memory-bound (AI <= ~48 vs a
        2.7 TFLOPS peak), so the compute-bound check runs on one core."""
        fast = machine_with_cluster(ddr_bandwidth=85.2e9)
        base = MachineConfig().validate()
        shape = (20480, 96, 20480)  # AI ~ 48 >> single-core ridge (~11)
        t_fast = ftimm_gemm(
            *shape, machine=fast, cores=1, timing="analytic"
        ).seconds
        t_base = ftimm_gemm(
            *shape, machine=base, cores=1, timing="analytic"
        ).seconds
        assert t_fast > t_base * 0.9  # compute-bound: ~no benefit

    def test_dma_overheads_hurt_skinny_rows(self):
        costly = machine_with_cluster(
            dma=dataclasses.replace(DmaConfig(), row_overhead_bytes=512)
        )
        base = MachineConfig().validate()
        shape = (2**18, 8, 8)  # 32-byte rows: overhead dominates
        t_costly = ftimm_gemm(*shape, machine=costly, timing="analytic").seconds
        t_base = ftimm_gemm(*shape, machine=base, timing="analytic").seconds
        assert t_costly > 2 * t_base


class TestRegisterFileChanges:
    def test_smaller_register_file_narrows_m_u(self):
        small = make_machine(n_vector_regs=32)
        big = make_machine(n_vector_regs=64)
        reg_small = KernelRegistry(small.cluster.core)
        reg_big = KernelRegistry(big.cluster.core)
        k_small = reg_small.ftimm(14, 96, 512)
        k_big = reg_big.ftimm(14, 96, 512)
        assert k_small.blocks[0].m_u < k_big.blocks[0].m_u
        _s, vregs = k_small.registers_used()
        assert vregs <= 32

    def test_smaller_register_file_still_correct(self):
        small = make_machine(n_vector_regs=24)
        kern = KernelRegistry(small.cluster.core).ftimm(10, 96, 16)
        rng = np.random.default_rng(2)
        a = rng.standard_normal((10, 16)).astype(np.float32)
        b = rng.standard_normal((16, 96)).astype(np.float32)
        c1 = np.zeros((10, 96), np.float32)
        c2 = np.zeros((10, 96), np.float32)
        kern.apply(a, b, c1)
        kern.apply_interpreted(a, b, c2)
        np.testing.assert_allclose(c1, c2, rtol=1e-4, atol=1e-4)
