"""The big correctness matrix: driver x precision x buffering x cores.

Every combination the library exposes must compute ``C += A @ B``; this
file sweeps the cross-product on one representative shape per driver so a
regression anywhere in the lowering/executor stack cannot hide behind an
untested combination.
"""

import numpy as np
import pytest

from repro.core.blocking import KPlan, MPlan
from repro.core.ftimm import ftimm_gemm
from repro.core.lowering import GemmOperands
from repro.core.parallel_k import build_parallel_k
from repro.core.parallel_m import build_parallel_m
from repro.core.shapes import GemmShape
from repro.executor.functional import run_functional
from repro.hw.config import default_machine

M_SHAPE = GemmShape(500, 32, 300)   # M-parallel territory
K_SHAPE = GemmShape(32, 32, 2500)   # K-parallel territory


def operands(shape, dtype, seed=0):
    rng = np.random.default_rng(seed)
    np_dt = np.float32 if dtype == "f32" else np.float64
    a = rng.standard_normal((shape.m, shape.k)).astype(np_dt)
    b = rng.standard_normal((shape.k, shape.n)).astype(np_dt)
    c = rng.standard_normal((shape.m, shape.n)).astype(np_dt)
    ref = (c.astype(np.float64) + a.astype(np.float64) @ b.astype(np.float64))
    return a, b, c, ref.astype(np_dt)


def check(c, ref, dtype, k):
    tol = (1e-5 * max(8, k)) if dtype == "f32" else 1e-10 * max(8, k)
    np.testing.assert_allclose(c, ref, rtol=tol, atol=tol)


@pytest.mark.parametrize("dtype", ["f32", "f64"])
@pytest.mark.parametrize("pingpong", [True, False])
@pytest.mark.parametrize("builder_name", ["m", "k"])
def test_driver_matrix(cluster, registry, builder_name, pingpong, dtype):
    shape = M_SHAPE if builder_name == "m" else K_SHAPE
    a, b, c, ref = operands(shape, dtype)
    data = GemmOperands.check(shape, a, b, c, dtype=dtype)
    if builder_name == "m":
        plan = MPlan(n_g=48, n_a=48, dtype=dtype) if dtype == "f64" else MPlan()
        ex = build_parallel_m(
            shape, cluster, plan=plan, data=data, registry=registry,
            pingpong=pingpong,
        )
    else:
        plan = (
            KPlan(n_g=48, n_a=48, m_a=512, m_g=512, k_a=448, m_s=8, dtype="f64")
            if dtype == "f64" else KPlan()
        )
        ex = build_parallel_k(
            shape, cluster, plan=plan, data=data, registry=registry,
            pingpong=pingpong,
        )
    run_functional(ex)
    check(c, ref, dtype, shape.k)


@pytest.mark.parametrize("cores", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("strategy", ["m", "k"])
def test_core_count_matrix(strategy, cores):
    shape = M_SHAPE if strategy == "m" else K_SHAPE
    a, b, c, ref = operands(shape, "f32", seed=cores)
    ftimm_gemm(
        shape.m, shape.n, shape.k,
        a=a, b=b, c=c, cores=cores, force_strategy=strategy, timing="none",
    )
    check(c, ref, "f32", shape.k)


@pytest.mark.parametrize("dtype", ["f32", "f64"])
@pytest.mark.parametrize("timing", ["des", "analytic"])
def test_timing_mode_matrix(dtype, timing):
    shape = GemmShape(4096, 32, 256)
    result = ftimm_gemm(
        shape.m, shape.n, shape.k, timing=timing, dtype=dtype
    )
    assert result.seconds > 0
    peak = default_machine().cluster.peak_flops * (1.0 if dtype == "f32" else 0.5)
    assert result.gflops * 1e9 <= peak


def test_des_and_analytic_agree_for_f64(cluster):
    des = ftimm_gemm(4096, 32, 256, timing="des", dtype="f64")
    ana = ftimm_gemm(4096, 32, 256, timing="analytic", dtype="f64")
    assert ana.seconds == pytest.approx(des.seconds, rel=0.2)
