"""Multi-cluster GEMM: correctness of both splits and scaling behaviour."""

import numpy as np
import pytest

from repro.core.multi_cluster import choose_split, multi_cluster_gemm
from repro.core.shapes import GemmShape
from repro.errors import PlanError, ShapeError

from conftest import assert_gemm_close, make_operands


class TestCorrectness:
    @pytest.mark.parametrize("split", ["m", "k"])
    @pytest.mark.parametrize("clusters", [1, 2, 4])
    def test_functional_matches_reference(self, split, clusters):
        shape = GemmShape(512, 32, 600)
        data, ref = make_operands(shape, seed=3)
        multi_cluster_gemm(
            shape.m, shape.n, shape.k,
            n_clusters=clusters, split=split, timing="none",
            a=data.a, b=data.b, c=data.c,
        )
        assert_gemm_close(data.c, ref, shape.k)

    def test_m_split_uneven_rows(self):
        shape = GemmShape(101, 16, 64)  # 101 rows over 4 clusters
        data, ref = make_operands(shape, seed=4)
        multi_cluster_gemm(
            shape.m, shape.n, shape.k, n_clusters=4, split="m",
            timing="none", a=data.a, b=data.b, c=data.c,
        )
        assert_gemm_close(data.c, ref, shape.k)

    def test_k_split_uneven_depth(self):
        shape = GemmShape(48, 24, 1001)
        data, ref = make_operands(shape, seed=5)
        multi_cluster_gemm(
            shape.m, shape.n, shape.k, n_clusters=4, split="k",
            timing="none", a=data.a, b=data.b, c=data.c,
        )
        assert_gemm_close(data.c, ref, shape.k)

    def test_k_split_k_shorter_than_clusters(self):
        """K=3 over 4 clusters: some clusters get empty K extents."""
        shape = GemmShape(64, 16, 3)
        data, ref = make_operands(shape, seed=6)
        result = multi_cluster_gemm(
            shape.m, shape.n, shape.k, n_clusters=4, split="k",
            timing="none", a=data.a, b=data.b, c=data.c,
        )
        assert_gemm_close(data.c, ref, shape.k)
        assert result.shape == shape

    @pytest.mark.parametrize("split", ["m", "k"])
    def test_single_cluster_bit_identical_to_plain(self, split):
        """The 1-cluster degenerate split IS a plain ftimm_gemm call."""
        from repro.core.ftimm import ftimm_gemm

        shape = GemmShape(96, 16, 48)
        data, _ = make_operands(shape, seed=7)
        plain, _ = make_operands(shape, seed=7)
        multi_cluster_gemm(
            shape.m, shape.n, shape.k, n_clusters=1, split=split,
            timing="none", a=data.a, b=data.b, c=data.c,
        )
        ftimm_gemm(
            shape.m, shape.n, shape.k, timing="none",
            a=plain.a, b=plain.b, c=plain.c,
        )
        assert np.array_equal(data.c, plain.c)


class TestSplitSelection:
    def test_type1_prefers_m_split(self, machine):
        assert choose_split(GemmShape(2**20, 32, 32), machine) == "m"

    def test_type2_small_m_prefers_k_split(self, machine):
        assert choose_split(GemmShape(32, 32, 2**20), machine) == "k"

    def test_invalid_split_rejected(self):
        with pytest.raises(PlanError):
            multi_cluster_gemm(64, 32, 64, split="diagonal")

    def test_cluster_count_bounds(self):
        with pytest.raises(ShapeError):
            multi_cluster_gemm(64, 32, 64, n_clusters=5)
        with pytest.raises(ShapeError):
            multi_cluster_gemm(64, 32, 64, n_clusters=0)


class TestTiming:
    def test_m_split_speedup(self):
        one = multi_cluster_gemm(2**20, 32, 32, n_clusters=1)
        four = multi_cluster_gemm(2**20, 32, 32, n_clusters=4, split="m")
        assert one.seconds / four.seconds > 3.0

    def test_m_split_charges_b_replication(self):
        r = multi_cluster_gemm(2**18, 96, 512, n_clusters=4, split="m")
        assert r.replicate_seconds > 0
        assert r.reduce_seconds == 0

    def test_k_split_charges_reduction(self):
        r = multi_cluster_gemm(32, 32, 2**18, n_clusters=4, split="k")
        assert r.reduce_seconds > 0
        assert r.replicate_seconds == 0

    def test_single_cluster_has_no_overheads(self):
        r = multi_cluster_gemm(4096, 32, 128, n_clusters=1)
        assert r.split == "single"
        assert r.replicate_seconds == 0 and r.reduce_seconds == 0

    def test_gflops_and_efficiency(self):
        r = multi_cluster_gemm(2**20, 32, 32, n_clusters=4, split="m")
        assert r.gflops > 0
        assert 0 < r.efficiency < 1

    def test_result_carries_per_cluster_results(self):
        r = multi_cluster_gemm(2**18, 32, 32, n_clusters=2, split="m")
        assert len(r.cluster_results) == 2
        assert all(x.strategy == "m" for x in r.cluster_results)


class TestExperiment:
    def test_ext_multicluster_claims_hold(self):
        from repro.experiments import ext_multicluster

        for result in ext_multicluster.run():
            for claim in result.claims:
                assert claim.holds, f"{claim.name}: {claim.measured}"
