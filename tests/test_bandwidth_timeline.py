"""DDR bandwidth timeline recording and the ext_bandwidth experiment."""

import pytest

from repro.core.parallel_m import build_parallel_m
from repro.core.shapes import GemmShape
from repro.executor.timed import run_timed
from repro.hw.bandwidth import SharedChannel, mean_utilization
from repro.hw.event_sim import Simulator


class TestTimeline:
    def test_step_samples_recorded(self):
        sim = Simulator()
        ch = SharedChannel(sim, 100.0, record_timeline=True)

        def flow():
            yield ch.transfer(100.0)

        sim.process(flow())
        sim.run()
        assert ch.timeline
        times = [t for t, _r in ch.timeline]
        assert times == sorted(times)
        # first sample: one flow at full rate; last: back to zero
        assert ch.timeline[0][1] == pytest.approx(100.0)
        assert ch.timeline[-1][1] == 0.0

    def test_disabled_by_default(self):
        ch = SharedChannel(Simulator(), 100.0)
        assert ch.timeline is None

    def test_mean_utilization_exact_case(self):
        # 100 B at 100 B/s over a 2 s window: busy 1 s -> 50%
        sim = Simulator()
        ch = SharedChannel(sim, 100.0, record_timeline=True)

        def flow():
            yield ch.transfer(100.0)

        sim.process(flow())
        sim.run()
        assert mean_utilization(ch.timeline, 100.0, until=2.0) == pytest.approx(0.5)

    def test_mean_utilization_empty(self):
        assert mean_utilization([], 100.0, until=1.0) == 0.0

    def test_cap_reflected_in_rate(self):
        sim = Simulator()
        ch = SharedChannel(sim, 100.0, per_flow_cap=25.0, record_timeline=True)

        def flow():
            yield ch.transfer(50.0)

        sim.process(flow())
        sim.run()
        assert ch.timeline[0][1] == pytest.approx(25.0)


class TestRunTimedRecording:
    def test_utilization_reported(self, cluster, registry):
        result = run_timed(
            build_parallel_m(GemmShape(8000, 32, 64), cluster, registry=registry),
            record_bandwidth=True,
        )
        assert result.ddr_utilization is not None
        assert 0 < result.ddr_utilization <= cluster.dma.ddr_efficiency + 1e-9

    def test_off_by_default(self, cluster, registry):
        result = run_timed(
            build_parallel_m(GemmShape(2000, 32, 64), cluster, registry=registry)
        )
        assert result.ddr_utilization is None


class TestExperiment:
    def test_ext_bandwidth_claims_hold(self):
        from repro.experiments import ext_bandwidth

        for result in ext_bandwidth.run():
            for claim in result.claims:
                assert claim.holds, f"{claim.name}: {claim.measured}"
