"""Persistent tuning cache."""

import pytest

from repro.core.blocking import MPlan
from repro.core.shapes import GemmShape
from repro.core.tuning_cache import CacheEntry, CacheKey, TuningCache
from repro.errors import PlanError


class TestKey:
    def test_roundtrip(self):
        key = CacheKey(65536, 32, 32, 8, "f32")
        assert CacheKey.from_str(key.to_str()) == key

    def test_distinct_per_core_count(self, cluster):
        shape = GemmShape(64, 32, 64)
        k8 = CacheKey.of(shape, cluster)
        k4 = CacheKey.of(shape, cluster.with_cores(4))
        assert k8 != k4


class TestCache:
    def test_get_or_tune_populates(self, cluster, registry):
        cache = TuningCache()
        shape = GemmShape(8192, 32, 256)
        entry = cache.get_or_tune(shape, cluster, registry=registry)
        assert cache.misses == 1
        assert entry.strategy in ("m", "k")
        assert isinstance(entry.plan, MPlan) or entry.strategy == "k"

    def test_second_lookup_hits(self, cluster, registry):
        cache = TuningCache()
        shape = GemmShape(8192, 32, 256)
        first = cache.get_or_tune(shape, cluster, registry=registry)
        second = cache.get_or_tune(shape, cluster, registry=registry)
        assert cache.hits == 1 and cache.misses == 1
        assert second is first

    def test_plan_rebuild_validates(self, cluster, registry):
        cache = TuningCache()
        shape = GemmShape(8192, 32, 256)
        entry = cache.get_or_tune(shape, cluster, registry=registry)
        plan = entry.plan
        plan.validate(cluster)  # capacity-legal after rebuild

    def test_f64_not_searchable_yet(self, cluster):
        with pytest.raises(PlanError):
            TuningCache().get_or_tune(
                GemmShape(1024, 32, 64), cluster, dtype="f64"
            )


class TestPersistence:
    def test_json_roundtrip(self, cluster, registry, tmp_path):
        cache = TuningCache()
        shape = GemmShape(8192, 32, 256)
        entry = cache.get_or_tune(shape, cluster, registry=registry)
        path = cache.save(tmp_path / "tuned.json")
        loaded = TuningCache.load(path)
        assert len(loaded) == 1
        key = CacheKey.of(shape, cluster)
        restored = loaded.get(key)
        assert restored.strategy == entry.strategy
        assert restored.plan == entry.plan
        assert restored.seconds == pytest.approx(entry.seconds)

    def test_load_missing_file_gives_empty(self, tmp_path):
        cache = TuningCache.load(tmp_path / "absent.json")
        assert len(cache) == 0

    def test_corrupt_strategy_rejected(self):
        bad = '{"1x2x3@8c/f32": {"strategy": "zig", "plan": {}, "seconds": 1, "validated": true}}'
        with pytest.raises(PlanError):
            TuningCache.from_json(bad)

    def test_loaded_entry_usable_by_driver(self, cluster, registry, tmp_path):
        from repro.core.parallel_m import build_parallel_m
        from repro.executor.timed import run_timed

        cache = TuningCache()
        shape = GemmShape(8192, 32, 256)
        cache.get_or_tune(shape, cluster, registry=registry)
        loaded = TuningCache.load(cache.save(tmp_path / "t.json"))
        entry = loaded.get(CacheKey.of(shape, cluster))
        if entry.strategy == "m":
            ex = build_parallel_m(
                shape, cluster, plan=entry.plan, adjust=False, registry=registry
            )
            assert run_timed(ex).seconds > 0
