"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lowering import GemmOperands
from repro.core.shapes import GemmShape
from repro.hw.config import default_machine
from repro.kernels.registry import registry_for


@pytest.fixture(scope="session")
def machine():
    return default_machine()


@pytest.fixture(scope="session")
def cluster(machine):
    return machine.cluster


@pytest.fixture(scope="session")
def core(cluster):
    return cluster.core


@pytest.fixture(scope="session")
def registry(core):
    """Session-wide kernel cache: scheduling is the slow part of tests."""
    return registry_for(core)


def make_operands(shape: GemmShape, seed: int = 0):
    """Random float32 operands + the float64-accurate reference."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((shape.m, shape.k)).astype(np.float32)
    b = rng.standard_normal((shape.k, shape.n)).astype(np.float32)
    c = rng.standard_normal((shape.m, shape.n)).astype(np.float32)
    ref = (
        c.astype(np.float64) + a.astype(np.float64) @ b.astype(np.float64)
    ).astype(np.float32)
    return GemmOperands.check(shape, a, b, c), ref


def assert_gemm_close(c, ref, k):
    """float32 accumulation tolerance scaled with the reduction depth."""
    tol = 1e-5 * max(8.0, float(k))
    np.testing.assert_allclose(c, ref, rtol=tol, atol=tol)
