"""The live asyncio gateway: streaming admission over the serve engine.

The contracts under test are the ISSUE's acceptance bar:

* a seeded async driver produces records **bit-identical** to the
  equivalent pre-drawn replay — same shapes, arrivals, sheds and faults
  (the virtual-clock bridge and the arrivals-first heap rule);
* every gateway loss is *typed* (`OverloadError` / `FaultError`), never
  silent — including futures outstanding at shutdown;
* the gateway's private metrics fold into the ambient registry without
  double-counting, no matter how many in-flight snapshots happen;
* observed stack hints persist beside the plan DB and seed the next
  session's warmup without ever changing results.
"""

import asyncio
import json
from dataclasses import replace as dc_replace

import numpy as np
import pytest

from repro.analysis import critical_path, diff_critical_paths
from repro.errors import FaultError, OverloadError, PlanError
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, collecting, tracing
from repro.serve import (
    DegradePolicy,
    Gateway,
    GemmRequest,
    ServeConfig,
    gateway_replay,
    load_stack_hints,
    make_requests,
    save_stack_hints,
    serve,
)
from repro.serve.request import COMPLETED, SHED

from test_serve import fast_requests


def _chaos_config(**kw):
    """Overload + degradation + one sick cluster: the hardest replay."""
    base = dict(
        policy="least_loaded",
        queue_cap=8,
        degrade=DegradePolicy(),
        faults=FaultPlan(seed=7, bitflip_rate=0.6, max_kernel_retries=0),
        cluster_fault_scale=(1.0, 0.0, 0.0, 0.0),
        max_redispatch=1,
    )
    base.update(kw)
    return ServeConfig(**base)


class TestBitIdentity:
    @pytest.mark.parametrize("policy", ["fifo", "least_loaded", "edf"])
    def test_gateway_matches_replay(self, policy):
        config = ServeConfig(policy=policy)
        replay = serve(fast_requests(), config)
        live = gateway_replay(fast_requests(), config)
        assert live.records == replay.records
        assert live.batches == replay.batches
        assert live.makespan_s == replay.makespan_s

    def test_shed_parity_under_overload(self):
        config = _chaos_config()
        reqs = make_requests(
            "transformer", rate_rps=400000, n_requests=60, seed=3
        )
        replay = serve(reqs, config)
        live = gateway_replay(make_requests(
            "transformer", rate_rps=400000, n_requests=60, seed=3
        ), config)
        assert replay.shed > 0  # the scenario actually sheds
        assert live.records == replay.records
        d_a, d_b = replay.degrade, live.degrade
        assert (d_a.shed_queue_full, d_a.shed_class, d_a.shed_burn) == (
            d_b.shed_queue_full, d_b.shed_class, d_b.shed_burn
        )
        assert d_a.peak_burn == d_b.peak_burn

    def test_edf_quarantine_parity(self):
        config = _chaos_config(
            policy="edf",
            faults=FaultPlan(seed=9, bitflip_rate=0.8, max_kernel_retries=0),
        )
        reqs = lambda: make_requests(  # noqa: E731
            "transformer", rate_rps=300000, n_requests=48, seed=5
        )
        assert gateway_replay(reqs(), config).records == \
            serve(reqs(), config).records

    def test_gateway_run_is_replayable(self):
        config = ServeConfig(policy="edf")
        a = gateway_replay(fast_requests(seed=2), config)
        b = gateway_replay(fast_requests(seed=2), config)
        assert a.records == b.records


class TestTypedOutcomes:
    def test_submit_raises_typed_overload(self):
        config = ServeConfig(queue_cap=1, max_batch=64, max_wait_s=1.0)
        reqs = fast_requests(n=8, rate=1e6)

        async def drive():
            gw = Gateway(config)
            outcomes = await asyncio.gather(
                *[gw.submit(r) for r in reqs], return_exceptions=True
            )
            await gw.close()
            return gw, outcomes

        gw, outcomes = asyncio.run(drive())
        sheds = [o for o in outcomes if isinstance(o, OverloadError)]
        assert sheds and all(o.reason == "queue_full" for o in sheds)
        # every loss is in the record table too — nothing silent
        assert len(gw.report().records) == len(reqs)
        assert gw.report().shed == len(sheds)

    def test_submit_raises_typed_fault(self):
        config = ServeConfig(
            faults=FaultPlan(seed=1, bitflip_rate=1.0, max_kernel_retries=0),
            max_redispatch=0,
        )

        async def drive():
            async with Gateway(config) as gw:
                with pytest.raises(FaultError, match="failed"):
                    await gw.submit(fast_requests(n=1)[0])
                return gw.report()

        report = asyncio.run(drive())
        assert report.failed == len(report.records) == 1
        assert report.records[0].error

    def test_submit_many_returns_records_not_raises(self):
        config = _chaos_config()
        reqs = make_requests(
            "transformer", rate_rps=400000, n_requests=40, seed=3
        )

        async def drive():
            async with Gateway(config) as gw:
                return await gw.submit_many(reqs)

        records = asyncio.run(drive())
        assert [r.req_id for r in records] == [r.req_id for r in reqs]
        assert any(r.status == SHED for r in records)
        assert all(
            r.error for r in records if r.status != COMPLETED
        )

    def test_stream_yields_in_submit_order(self):
        async def drive():
            async with Gateway(ServeConfig()) as gw:
                got = []
                async for rec in gw.stream(fast_requests(n=6)):
                    got.append(rec.req_id)
                return got

        assert asyncio.run(drive()) == [0, 1, 2, 3, 4, 5]


class TestShutdown:
    def test_undrained_close_is_typed_never_silent(self):
        # huge max-wait: requests sit in open buckets when we close
        config = ServeConfig(max_wait_s=10.0, max_batch=64)
        reqs = fast_requests(n=4)

        async def drive():
            gw = Gateway(config)
            tasks = [asyncio.ensure_future(gw.submit(r)) for r in reqs]
            await asyncio.sleep(0)          # offers happen, nothing resolves
            assert gw.outstanding == len(reqs)
            await gw.close(drain=False)
            return gw, await asyncio.gather(*tasks, return_exceptions=True)

        gw, outcomes = asyncio.run(drive())
        assert all(isinstance(o, OverloadError) for o in outcomes)
        assert all(o.reason == "shutdown" for o in outcomes)
        report = gw.report()
        assert len(report.records) == len(reqs)     # no silent loss
        assert all(r.shed_reason == "shutdown" for r in report.records)

    def test_drained_close_resolves_everything(self):
        config = ServeConfig(max_wait_s=10.0, max_batch=64)
        reqs = fast_requests(n=4)

        async def drive():
            gw = Gateway(config)
            tasks = [asyncio.ensure_future(gw.submit(r)) for r in reqs]
            await asyncio.sleep(0)
            await gw.close(drain=True)
            return await asyncio.gather(*tasks)

        records = asyncio.run(drive())
        assert all(r.status == COMPLETED for r in records)

    def test_close_is_idempotent_and_submit_after_close_raises(self):
        async def drive():
            gw = Gateway(ServeConfig())
            await gw.submit(fast_requests(n=1)[0])
            await gw.close()
            await gw.close()
            with pytest.raises(PlanError, match="closed"):
                await gw.submit(fast_requests(n=2)[1])

        asyncio.run(drive())


class TestLiveSubmission:
    def test_closed_loop_caller_is_deterministic(self):
        """await-between-submits is a different workload than the open
        loop (the engine advances past would-be coalescing windows), but
        it must still be deterministic and fully typed."""
        config = ServeConfig()

        def run():
            async def drive():
                async with Gateway(config) as gw:
                    out = []
                    for req in fast_requests(n=8):
                        rec = await gw.submit(dc_replace(req))
                        out.append(rec)
                    return out
            return asyncio.run(drive())

        a, b = run(), run()
        assert a == b
        assert all(r.status == COMPLETED for r in a)

    def test_submit_gemm_stamps_arrivals_and_computes(self):
        rng = np.random.default_rng(0)

        async def drive():
            async with Gateway(ServeConfig(verify=True)) as gw:
                a = rng.standard_normal((32, 16)).astype(np.float32)
                b = rng.standard_normal((16, 24)).astype(np.float32)
                rec = await gw.submit_gemm(a, b, deadline_budget_s=1.0)
                # live clock: the next auto-stamped arrival never
                # precedes the resolved response
                rec2 = await gw.submit_gemm(a, b)
                return rec, rec2

        rec, rec2 = asyncio.run(drive())
        assert rec.status == COMPLETED and rec.bit_exact
        assert rec2.arrival_s >= rec.finish_s
        assert rec.deadline_met is True

    def test_submit_gemm_rejects_bad_operands(self):
        async def drive():
            async with Gateway(ServeConfig()) as gw:
                with pytest.raises(PlanError, match="2-D"):
                    await gw.submit_gemm(
                        np.zeros((4, 4), np.float32),
                        np.zeros((5, 4), np.float32),
                    )

        asyncio.run(drive())


class TestMetricsMerge:
    def test_inflight_snapshots_never_double_count(self):
        config = ServeConfig()
        reqs = fast_requests()

        # ground truth: the replay path under one ambient registry
        with collecting() as want:
            serve(fast_requests(), config)

        async def drive(gw):
            tasks = [asyncio.ensure_future(gw.submit(r)) for r in reqs]
            await asyncio.sleep(0)
            gw.stats()                      # mid-flight snapshot #1
            await asyncio.gather(*tasks)
            gw.stats()                      # snapshot #2, post-resolution
            await gw.close()                # final fold

        with collecting() as got:
            gw = Gateway(config)
            gw.warm(reqs)
            asyncio.run(drive(gw))

        for name in want.names():
            if name.startswith("serve/"):
                assert name in got
                w = want.snapshot()[name]
                g = got.snapshot()[name]
                if w["type"] in ("counter", "histogram", "distribution"):
                    assert g["count" if "count" in w else "value"] == \
                        w["count" if "count" in w else "value"], name
                if w["type"] == "histogram":
                    assert g["counts"] == w["counts"], name
                    assert g["total"] == w["total"], name

    def test_gateway_counters(self):
        with collecting() as reg:
            gateway_replay(fast_requests(n=6), ServeConfig())
        snap = reg.snapshot()
        assert snap["serve/gateway/submitted"]["value"] == 6
        assert snap["serve/gateway/resolved"]["value"] == 6


class TestGatewayTrace:
    def test_gateway_spans_emitted(self):
        reqs = fast_requests(n=6)

        async def drive():
            async with Gateway(ServeConfig()) as gw:
                await gw.submit_many(reqs)

        with tracing() as tracer:
            asyncio.run(drive())
        cats = {s.category for s in tracer.spans}
        assert "gateway" in cats
        names = [s.name for s in tracer.spans if s.category == "gateway"]
        assert any(n.startswith("submit req") for n in names)
        assert any(n.startswith("await req") for n in names)
        assert any(n.startswith("resolve req") for n in names)
        awaits = [s for s in tracer.spans
                  if s.category == "gateway" and s.name.startswith("await")]
        assert len(awaits) == len(reqs)
        assert all(s.end_s >= s.start_s for s in awaits)

    def test_tracing_never_changes_records(self):
        config = ServeConfig(policy="edf")
        plain = gateway_replay(fast_requests(seed=4), config)
        with tracing():
            traced = gateway_replay(fast_requests(seed=4), config)
        assert plain.records == traced.records


class TestStackHints:
    def test_roundtrip_and_merge(self, tmp_path):
        p = tmp_path / "stack-hints-v1.json"
        save_stack_hints({(64, 16, "f32"): 32}, p)
        save_stack_hints({(64, 256, "f32"): 53}, p)
        assert load_stack_hints(p) == {
            (64, 16, "f32"): 32, (64, 256, "f32"): 53,
        }
        # fresh observation overwrites the class, keeps the others
        save_stack_hints({(64, 16, "f32"): 48}, p)
        assert load_stack_hints(p)[(64, 16, "f32")] == 48

    def test_corrupt_store_quarantined(self, tmp_path):
        p = tmp_path / "stack-hints-v1.json"
        p.write_text("{not json")
        assert load_stack_hints(p) == {}
        assert p.with_name(p.name + ".bad").exists()
        assert not p.exists()

    def test_wrong_version_ignored(self, tmp_path):
        p = tmp_path / "stack-hints-v1.json"
        p.write_text(json.dumps({"version": 999, "hints": {}}))
        assert load_stack_hints(p) == {}

    def test_observed_hints_close_the_loop(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        config = ServeConfig(stack_hints="observed")
        first = serve(fast_requests(seed=0), config)
        persisted = load_stack_hints(
            tmp_path / "plans" / "stack-hints-v1.json"
        )
        assert persisted == first.stack_hints()
        second = serve(fast_requests(seed=1), config)
        assert second.warmup.hinted == second.warmup.n_buckets
        # hints steer warmup only — results match the un-hinted run
        plain = serve(fast_requests(seed=1), ServeConfig())
        assert second.records == plain.records

    def test_gateway_persists_observed_hints(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        config = ServeConfig(stack_hints="observed")
        report = gateway_replay(fast_requests(seed=0), config)
        assert load_stack_hints(
            tmp_path / "plans" / "stack-hints-v1.json"
        ) == report.stack_hints()

    def test_config_rejects_bogus_hints_mode(self):
        with pytest.raises(PlanError, match="stack_hints"):
            ServeConfig(stack_hints="bogus")


class TestTraceDiff:
    def _reports(self):
        slow = ServeConfig(max_wait_s=2e-3)
        fast = ServeConfig(max_wait_s=1e-4)
        a = serve(fast_requests(n=32), slow)
        b = serve(fast_requests(n=32), fast)
        return (
            critical_path(a.records, a.batches),
            critical_path(b.records, b.batches),
        )

    def test_diff_shows_queue_shrinking(self):
        cp_a, cp_b = self._reports()
        diff = diff_critical_paths(cp_a, cp_b)
        assert diff.quantiles == (0.50, 0.99)
        # a 20x smaller max-wait must shrink the queue segment's tail
        assert diff.delta(0.99)["queue"] < 0
        assert "queue" in diff.render()
        assert diff.to_dict()["verdict"] == diff.verdict()

    def test_diff_of_identical_runs_is_zero(self):
        cp_a, _ = self._reports()
        diff = diff_critical_paths(cp_a, cp_a)
        for q in diff.quantiles:
            assert all(v == 0.0 for v in diff.delta(q).values())
        assert "unchanged" in diff.verdict()

    def test_diff_validates_quantiles(self):
        cp_a, cp_b = self._reports()
        with pytest.raises(Exception, match="quantile"):
            diff_critical_paths(cp_a, cp_b, quantiles=(1.5,))
        with pytest.raises(Exception, match="at least one"):
            diff_critical_paths(cp_a, cp_b, quantiles=())


class TestClosedLoop:
    """Closed-loop characterization: windowed live drivers (ROADMAP).

    A closed-loop driver keeps a fixed window of awaits in flight and
    submits the next request only when one resolves — the natural live
    workload the gateway exists for.  Contracts: the run is bit-identical
    per seed (the arrivals-first heap rule does not care that arrivals
    are reactive), throughput is monotone in the window size until
    saturation, and ``outstanding_high_water`` reports exactly the
    backpressure the driver exerted.
    """

    N_REQUESTS = 32

    @staticmethod
    def _operands(seed, n):
        rng = np.random.default_rng(seed)
        b = rng.standard_normal((48, 32)).astype(np.float32)
        return [
            rng.standard_normal((8 + 4 * (i % 3), 48)).astype(np.float32)
            for i in range(n)
        ], b

    def _drive(self, window, seed=0):
        """Run a windowed closed loop; return (records, report, gateway)."""
        a_list, b = self._operands(seed, self.N_REQUESTS)

        async def go():
            # max_batch above the widest window: buckets close by
            # max-wait, not by filling, so no submit resolves
            # synchronously and the high-water stat is exactly the
            # driver's window
            gw = Gateway(ServeConfig(
                policy="least_loaded", warmup=False, cold_tune_s=5e-4,
                max_batch=24,
            ))
            records = []
            for lo in range(0, self.N_REQUESTS, window):
                wave = [
                    gw.submit_gemm(a, b, klass="closed")
                    for a in a_list[lo:lo + window]
                ]
                records.extend(await asyncio.gather(*wave))
            await gw.close()
            return records, gw.report(), gw

        return asyncio.run(go())

    @pytest.mark.parametrize("window", [1, 4, 16])
    def test_deterministic_per_seed(self, window):
        first, report_a, _ = self._drive(window)
        second, report_b, _ = self._drive(window)
        assert first == second
        assert report_a.records == report_b.records
        assert all(r.status == COMPLETED for r in first)

    def test_goodput_monotone_in_concurrency(self):
        rates = {}
        for window in (1, 4, 16):
            _, report, _ = self._drive(window)
            assert report.completed == self.N_REQUESTS
            rates[window] = report.completed_rps
        # wider windows overlap cluster use and coalesce deeper stacks;
        # completed-throughput must not degrade as the window grows
        assert rates[1] <= rates[4] <= rates[16]
        assert rates[16] > rates[1]

    @pytest.mark.parametrize("window", [1, 4, 16])
    def test_outstanding_high_water_reports_backpressure(self, window):
        _, _, gw = self._drive(window)
        assert gw.outstanding_high_water == window
        assert gw.outstanding == 0  # drained at close

    def test_outstanding_gauge_exported(self):
        with collecting() as reg:
            _, _, gw = self._drive(4)
        snap = reg.snapshot()
        gauge = snap.get("serve/gateway/outstanding")
        assert gauge is not None
        assert gauge["high"] == 4
