"""DMA descriptors, timing model and engine."""

import pytest

from repro.errors import PlanError
from repro.hw.bandwidth import LocalChannel, SharedChannel
from repro.hw.config import DmaConfig, DspCoreConfig
from repro.hw.dma import DmaDescriptor, DmaEngine, DmaTimingModel
from repro.hw.event_sim import Simulator
from repro.hw.memory import MemKind


class TestDescriptor:
    def test_nbytes(self):
        d = DmaDescriptor(MemKind.DDR, MemKind.AM, rows=10, row_bytes=128)
        assert d.nbytes == 1280

    def test_medium_ddr_dominates(self):
        d = DmaDescriptor(MemKind.DDR, MemKind.GSM, 1, 64)
        assert d.medium is MemKind.DDR

    def test_medium_gsm_when_no_ddr(self):
        d = DmaDescriptor(MemKind.GSM, MemKind.SM, 1, 64)
        assert d.medium is MemKind.GSM

    def test_medium_local(self):
        d = DmaDescriptor(MemKind.AM, MemKind.SM, 1, 64)
        assert d.medium is MemKind.AM

    def test_effective_bytes_overhead_only_for_ddr(self):
        cfg = DmaConfig(row_overhead_bytes=64)
        ddr = DmaDescriptor(MemKind.DDR, MemKind.AM, rows=10, row_bytes=128)
        gsm = DmaDescriptor(MemKind.GSM, MemKind.AM, rows=10, row_bytes=128)
        assert ddr.effective_bytes(cfg) == 10 * (128 + 64)
        assert gsm.effective_bytes(cfg) == 10 * 128

    def test_short_rows_waste_more_bandwidth(self):
        cfg = DmaConfig(row_overhead_bytes=64)
        skinny = DmaDescriptor(MemKind.DDR, MemKind.AM, rows=100, row_bytes=32)
        chunky = DmaDescriptor(MemKind.DDR, MemKind.AM, rows=1, row_bytes=3200)
        assert skinny.nbytes == chunky.nbytes
        assert skinny.effective_bytes(cfg) > chunky.effective_bytes(cfg)

    def test_negative_geometry_rejected(self):
        with pytest.raises(PlanError):
            DmaDescriptor(MemKind.DDR, MemKind.AM, rows=-1, row_bytes=4)


class TestTimingModel:
    def test_seconds_formula(self):
        core = DspCoreConfig()
        dma = DmaConfig(startup_cycles=180, row_overhead_bytes=64)
        tm = DmaTimingModel(core, dma)
        desc = DmaDescriptor(MemKind.DDR, MemKind.AM, rows=10, row_bytes=128)
        bw = 10e9
        expected = 180 / core.clock_hz + 10 * (128 + 64) / bw
        assert tm.seconds(desc, bw) == pytest.approx(expected)

    def test_zero_bytes_is_free(self):
        tm = DmaTimingModel(DspCoreConfig(), DmaConfig())
        desc = DmaDescriptor(MemKind.DDR, MemKind.AM, rows=0, row_bytes=128)
        assert tm.seconds(desc, 1e9) == 0.0

    def test_local_transfers_use_am_bandwidth(self):
        core = DspCoreConfig()
        tm = DmaTimingModel(core, DmaConfig(startup_cycles=0))
        desc = DmaDescriptor(MemKind.AM, MemKind.SM, rows=1, row_bytes=5120)
        expected = 5120 / (core.am_bytes_per_cycle * core.clock_hz)
        assert tm.seconds(desc, 1.0) == pytest.approx(expected)


def make_engine(channels=2, startup=0):
    sim = Simulator()
    core = DspCoreConfig()
    dma = DmaConfig(channels_per_core=channels, startup_cycles=startup)
    chans = {
        MemKind.DDR: SharedChannel(sim, 100.0, "ddr"),
        MemKind.GSM: SharedChannel(sim, 1000.0, "gsm"),
        MemKind.AM: LocalChannel(sim, 10000.0, "local"),
    }
    chans[MemKind.SM] = chans[MemKind.AM]
    return sim, DmaEngine(sim, 0, core, dma, chans)


class TestEngine:
    def test_transfer_completes_and_counts(self):
        sim, eng = make_engine()
        desc = DmaDescriptor(MemKind.GSM, MemKind.AM, rows=10, row_bytes=100)
        ev = eng.issue(desc)
        sim.run()
        assert ev.triggered
        assert eng.bytes_moved == 1000
        assert eng.transfers == 1

    def test_channels_limit_concurrency(self):
        sim, eng = make_engine(channels=1)
        # two GSM transfers of 1000 B at 1000 B/s each: serialized -> 2 s
        d = DmaDescriptor(MemKind.GSM, MemKind.AM, rows=10, row_bytes=100)
        eng.issue(d)
        eng.issue(d)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_two_channels_overlap(self):
        sim, eng = make_engine(channels=2)
        d = DmaDescriptor(MemKind.GSM, MemKind.AM, rows=10, row_bytes=100)
        eng.issue(d)
        eng.issue(d)
        sim.run()
        # GSM is a shared channel: two concurrent flows at 500 B/s each
        assert sim.now == pytest.approx(2.0)

    def test_startup_cost_applied(self):
        sim, eng = make_engine(startup=1800)  # 1 us at 1.8 GHz
        d = DmaDescriptor(MemKind.GSM, MemKind.AM, rows=1, row_bytes=1000)
        eng.issue(d)
        sim.run()
        assert sim.now == pytest.approx(1e-6 + 1.0)

    def test_ddr_contention_between_engines(self):
        sim = Simulator()
        core = DspCoreConfig()
        dma = DmaConfig(channels_per_core=1, startup_cycles=0)
        ddr = SharedChannel(sim, 100.0, "ddr")
        chans = {
            MemKind.DDR: ddr,
            MemKind.GSM: SharedChannel(sim, 1e6),
            MemKind.AM: LocalChannel(sim, 1e6),
        }
        chans[MemKind.SM] = chans[MemKind.AM]
        engines = [DmaEngine(sim, i, core, dma, chans) for i in range(2)]
        d = DmaDescriptor(MemKind.DDR, MemKind.AM, rows=1, row_bytes=100)
        for eng in engines:
            eng.issue(d)
        sim.run()
        # two engines share the port: 100+64 overhead each at 50 B/s
        assert sim.now == pytest.approx(2 * 164 / 100.0)
