"""Systematic kernel-grid invariants.

Sweeps the generator across the whole supported (m_s, n_a) grid and
asserts the invariants that must hold for *every* kernel — the paper's
ceilings, monotonicities, and basic sanity.  This is the widest net the
suite casts over the generator.
"""

import pytest

from repro.isa.scheduler import verify_schedule

M_GRID = [1, 2, 3, 4, 6, 8, 11, 14, 16]
N_GRID = [8, 16, 32, 48, 64, 80, 96]


@pytest.fixture(scope="module")
def grid(registry):
    return {
        (m, n): registry.ftimm(m, n, 256)
        for m in M_GRID
        for n in N_GRID
    }


class TestGridInvariants:
    def test_efficiency_in_unit_interval(self, grid):
        for key, kern in grid.items():
            assert 0 < kern.efficiency <= 1.0, key

    def test_broadcast_ceiling_narrow(self, grid):
        for (m, n), kern in grid.items():
            if n <= 32:
                assert kern.efficiency <= 2 / 3 + 1e-9, (m, n)

    def test_register_budget_respected(self, grid, core):
        for key, kern in grid.items():
            _s, vregs = kern.registers_used()
            assert vregs <= core.n_vector_regs, key

    def test_row_blocks_partition_m(self, grid):
        for (m, n), kern in grid.items():
            assert sum(b.m_u for b in kern.blocks) == m

    def test_schedules_verify(self, grid, core):
        for key, kern in grid.items():
            for sched in kern.body_schedules:
                verify_schedule(sched, core.latencies)

    def test_cycle_count_positive_and_bounded(self, grid, core):
        """Cycles at least the FMA issue bound, at most 100x it."""
        for (m, n), kern in grid.items():
            v_n = -(-n // 32)
            fma_instrs = m * v_n * 256  # total FMA issues over k
            lower = fma_instrs / core.n_vector_fmac
            assert kern.cycles >= lower, (m, n)
            assert kern.cycles <= 100 * max(lower, 1), (m, n)

    def test_wider_n_never_lowers_gflops(self, grid):
        """At equal m and k, more columns means at least as much useful
        work per cycle (per-v_n-class monotonicity)."""
        for m in M_GRID:
            by_class: dict[int, list[float]] = {}
            for n in N_GRID:
                v_n = -(-n // 32)
                by_class.setdefault(v_n, []).append(grid[(m, n)].gflops)
            for values in by_class.values():
                assert values == sorted(values), m

    def test_full_vector_beats_ragged(self, registry):
        for m in (6, 8, 12):
            full = registry.ftimm(m, 64, 256).efficiency
            ragged = registry.ftimm(m, 65, 256).efficiency
            assert full > ragged


class TestGridMeta:
    def test_ku_selection_rule(self, grid, core):
        """k_u = 1 only for full-width kernels with enough rows."""
        t_fma = core.latencies.t_fma
        for (m, n), kern in grid.items():
            info = kern.blocks[0]
            if info.k_u == 1:
                assert n > 64, (m, n)
                assert info.m_u >= t_fma or m < t_fma, (m, n)

    def test_mu_never_exceeds_ms(self, grid):
        for (m, _n), kern in grid.items():
            assert all(b.m_u <= m for b in kern.blocks)

    def test_meta_records_decisions(self, grid):
        for kern in grid.values():
            meta = kern.program.meta
            assert {"m_u", "k_u", "v_n", "k_eff"} <= set(meta)
