"""Theory tests: generated-kernel IIs against closed-form lower bounds.

For the paper's kernel classes the steady-state II has an exact resource
arithmetic (Section IV-A2/A3).  These tests sweep the (m_u, k_u, v_n)
design space and assert the modulo scheduler lands exactly on the bound
whenever the bound is achievable — i.e. the generated schedules are as
tight as the paper's hand pipelines.
"""

import math

import pytest

from repro.kernels.spec import KernelSpec


def expected_ii(m_u: int, k_u: int, v_n: int, t_fma: int = 4) -> int:
    """Closed-form ResMII/RecMII for one generated loop body.

    Per iteration: ``m_u*k_u*v_n`` FMAs on 3 pipes; ``m_u`` (k_u == 1) or
    ``m_u * k_u / 2`` (paired) scalar loads on 1 unit; the same count of
    broadcasts on 1 unit; extends on 1 unit; B loads on 2 units; the FMAC
    accumulator recurrence needs II >= t_fma.
    """
    fmas = m_u * k_u * v_n
    fmac_bound = math.ceil(fmas / 3)
    if k_u == 1:
        scalar_chain = m_u          # SLDH / SFEXT / SVBCAST each m_u x 1-wide
    else:
        scalar_chain = max(
            m_u * k_u // 2,          # SLDW pairs and SVBCAST2 duals
            m_u * k_u // 2,
        )
    vload_instrs = k_u * math.ceil(v_n / 2)
    vls_bound = math.ceil(vload_instrs / 2)
    return max(fmac_bound, scalar_chain, vls_bound, t_fma if k_u * m_u * v_n >= 3 * t_fma else 1)


# combos where the bound is exactly achievable by the paper's pipelines
ACHIEVABLE = [
    # (m_s, n_a) -> expect II == closed form with the generator's tiling
    (8, 96), (10, 96), (12, 96), (14, 96),   # k_u=1 full-width
    (6, 96), (4, 96),
    (6, 64), (9, 64),                         # paired, m_u*4 % 3 handling
    (6, 32), (8, 32), (10, 32), (14, 32),     # broadcast-limited
]


class TestIiMatchesTheory:
    @pytest.mark.parametrize("m_s,n_a", ACHIEVABLE)
    def test_ii_equals_closed_form(self, registry, core, m_s, n_a):
        kern = registry.ftimm(m_s, n_a, 512)
        info = kern.blocks[0]
        spec = KernelSpec(m_s, n_a, 512)
        bound = expected_ii(info.m_u, info.k_u, spec.v_n, core.latencies.t_fma)
        # the scheduler may need at most one extra cycle over the bound
        # (single-pass placement without backtracking)
        assert bound <= info.ii <= bound + 1, (
            f"{m_s}x{n_a}: II={info.ii} vs bound={bound} "
            f"(m_u={info.m_u}, k_u={info.k_u})"
        )

    @pytest.mark.parametrize("m_s,n_a", [(8, 96), (12, 96), (6, 64), (14, 32)])
    def test_ii_exactly_at_bound_for_saturated_kernels(
        self, registry, core, m_s, n_a
    ):
        kern = registry.ftimm(m_s, n_a, 512)
        info = kern.blocks[0]
        spec = KernelSpec(m_s, n_a, 512)
        assert info.ii == expected_ii(
            info.m_u, info.k_u, spec.v_n, core.latencies.t_fma
        )


class TestEfficiencyDecomposition:
    def test_steady_state_efficiency_formula(self, registry, core):
        """For a deep-K kernel, efficiency ~= useful FMAs / (3 * II),
        scaled by lane utilization n_a / padded_n."""
        for m_s, n_a in [(8, 96), (6, 64), (14, 32)]:
            kern = registry.ftimm(m_s, n_a, 4096)
            info = kern.blocks[0]
            spec = KernelSpec(m_s, n_a, 4096)
            fma_issue = info.m_u * info.k_u * spec.v_n
            steady = (fma_issue / (3 * info.ii)) * (n_a / spec.padded_n)
            assert kern.efficiency == pytest.approx(steady, rel=0.06)

    def test_overhead_shrinks_with_k(self, registry):
        effs = [registry.ftimm(8, 96, k).efficiency for k in (32, 128, 512, 4096)]
        assert effs == sorted(effs)
