"""Additional hardware-layer coverage: DES composition patterns, channel
statistics, memory corner cases."""

import numpy as np
import pytest

from repro.errors import CapacityError
from repro.hw.bandwidth import SharedChannel
from repro.hw.event_sim import AllOf, Resource, Simulator
from repro.hw.memory import MemKind, MemorySpace


class TestNestedComposition:
    def test_all_of_of_all_of(self):
        sim = Simulator()
        inner1 = sim.all_of([sim.timeout(1.0), sim.timeout(2.0)])
        inner2 = sim.all_of([sim.timeout(3.0)])
        outer = sim.all_of([inner1, inner2])
        sim.run()
        assert outer.triggered
        assert sim.now == 3.0

    def test_process_chain_of_three(self):
        sim = Simulator()

        def stage(n, prev=None):
            if prev is not None:
                yield prev
            yield sim.timeout(1.0)
            return n

        p1 = sim.process(stage(1))
        p2 = sim.process(stage(2, p1))
        p3 = sim.process(stage(3, p2))
        sim.run()
        assert p3.value == 3
        assert sim.now == 3.0

    def test_resource_fifo_order_strict(self):
        sim = Simulator()
        res = Resource(sim, 1)
        order = []

        def user(i):
            yield res.request()
            order.append(i)
            yield sim.timeout(0.5)
            res.release()

        for i in range(6):
            sim.process(user(i))
        sim.run()
        assert order == list(range(6))


class TestChannelStats:
    def test_busy_time_accounts_idle_gaps(self):
        sim = Simulator()
        ch = SharedChannel(sim, 100.0)

        def flows():
            yield ch.transfer(100.0)     # 1 s busy
            yield sim.timeout(5.0)       # idle gap
            yield ch.transfer(200.0)     # 2 s busy

        sim.process(flows())
        sim.run()
        assert ch.stats.busy_time == pytest.approx(3.0)
        assert ch.stats.flows_completed == 2

    def test_weighted_concurrency_integral(self):
        sim = Simulator()
        ch = SharedChannel(sim, 100.0)

        def flow(nbytes):
            yield ch.transfer(nbytes)

        sim.process(flow(100.0))
        sim.process(flow(100.0))
        sim.run()
        # both active for 2 s at concurrency 2: integral = 4
        assert ch.stats.weighted_concurrency == pytest.approx(4.0)


class TestMemoryCorners:
    def test_alignment_one_allowed(self):
        space = MemorySpace("t", MemKind.AM, 64, alignment=1)
        buf = space.alloc((1, 3), np.float32)
        assert buf.nbytes == 12  # no rounding

    def test_zero_sized_allocation(self):
        space = MemorySpace("t", MemKind.AM, 128)
        buf = space.alloc((0, 16), np.float32)
        assert buf.nbytes == space.alignment  # minimum footprint
        space.free(buf)
        assert space.used == 0

    def test_interleaved_free_reuse(self):
        space = MemorySpace("t", MemKind.AM, 256, alignment=64)
        a = space.alloc((1, 16))
        b = space.alloc((1, 16))
        c = space.alloc((1, 16))
        space.free(b)
        d = space.alloc((1, 16))  # should reuse b's hole (first fit)
        assert d.offset == b.offset
        for buf in (a, c, d):
            space.free(buf)

    def test_fragmentation_can_block_large_alloc(self):
        space = MemorySpace("t", MemKind.AM, 256, alignment=64)
        bufs = [space.alloc((1, 16)) for _ in range(4)]
        space.free(bufs[0])
        space.free(bufs[2])  # 128 B free but split into two 64 B holes
        with pytest.raises(CapacityError):
            space.alloc((1, 32))  # needs 128 contiguous

    def test_buffer_repr_and_free_helper(self):
        space = MemorySpace("t", MemKind.AM, 128)
        buf = space.alloc((1, 4), label="x")
        buf.free()
        assert buf.freed
