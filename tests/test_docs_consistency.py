"""Documentation consistency guards.

Docs rot silently; these tests tie the prose artifacts to the code so CI
catches drift: every experiment appears in EXPERIMENTS.md, the README's
example table matches the examples directory, and the claims banner
parses and holds.
"""

import re
from pathlib import Path

import repro

ROOT = Path(__file__).resolve().parents[1]


class TestExperimentsMd:
    def test_all_experiments_present(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        import repro.experiments as exp

        for name in exp.__all__:
            module = getattr(exp, name)
            if not hasattr(module, "run"):
                continue
            # every module contributes at least one "### <exp_id>" header;
            # exp ids start with the module's short name
            short = "table" if name == "tables123" else name
            assert re.search(rf"### {short}", text), name

    def test_claims_banner_all_hold(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        match = re.search(r"Claims held: (\d+) / (\d+)", text)
        assert match, "claims banner missing"
        held, total = int(match.group(1)), int(match.group(2))
        assert held == total, f"{total - held} claims failing in EXPERIMENTS.md"
        assert total >= 70

    def test_no_failing_claim_markers(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "| **no** |" not in text


class TestReadme:
    def test_example_table_matches_directory(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, f"{script.name} missing from README"

    def test_headline_peaks_match_fig3(self):
        """The README's micro-kernel numbers must match the live model."""
        from repro.kernels.registry import registry_for

        registry = registry_for(repro.default_machine().cluster.core)
        peak_96 = max(
            registry.ftimm(m, 96, 512).efficiency for m in (8, 10, 12, 14)
        )
        readme = (ROOT / "README.md").read_text()
        assert f"{100 * peak_96:.1f}" in readme

    def test_docs_links_resolve(self):
        readme = (ROOT / "README.md").read_text()
        for link in re.findall(r"\]\(([\w/.]+\.md)\)", readme):
            assert (ROOT / link).exists(), link


class TestDesign:
    def test_design_mentions_every_package(self):
        design = (ROOT / "DESIGN.md").read_text()
        for pkg in ("hw", "isa", "kernels", "core", "executor",
                    "baselines", "workloads", "experiments"):
            assert f"repro/{pkg}" in design or f"repro.{pkg}" in design, pkg

    def test_mismatch_note_absent(self):
        """DESIGN.md must record that the paper text was verified (the
        title-collision guard from the task brief)."""
        design = (ROOT / "DESIGN.md").read_text()
        assert "Paper verified" in design
