"""The intro-workloads extension experiment."""

from repro.experiments import ext_workloads


class TestExtWorkloads:
    def test_all_claims_hold(self):
        results = ext_workloads.run()
        for result in results:
            for claim in result.claims:
                assert claim.holds, f"{result.exp_id}: {claim.name}: {claim.measured}"

    def test_covers_all_five_domains(self):
        ids = {r.exp_id for r in ext_workloads.run()}
        assert ids == {
            "ext_workloads_kmeans",
            "ext_workloads_vgg16",
            "ext_workloads_resnet18",
            "ext_workloads_attention",
            "ext_workloads_fem",
        }

    def test_regular_layers_marked_neutral(self):
        results = {r.exp_id: r for r in ext_workloads.run()}
        vgg = results["ext_workloads_vgg16"].series[0]
        # deep VGG layers are regular: speedup pinned at 1.0 (TGEMM path)
        assert 1.0 in vgg.y
        assert max(vgg.y) > 3.0
