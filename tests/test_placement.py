"""Replicated-B placement: manager semantics and scheduler edge cases.

The ISSUE's edge-case checklist, plus the manager's own contracts:

* all-clusters-quarantined fail-open still honors replica routing;
* a replica whose holder is quarantined routes to a *healthy* holder,
  or — when every holder is sick — falls back to policy binding and
  honestly pays a re-stage;
* single-bucket streams with fewer batches than clusters neither crash
  nor over-replicate;
* promotion targets the least-loaded clusters, demotion is LRU, a fully
  evicted digest must re-earn promotion (thrash guard), and oversized
  B matrices are never promoted.
"""

import pytest

from repro.errors import PlanError
from repro.serve import PlacementManager, Scheduler, ServeConfig, serve
from repro.serve.degrade import HealthPolicy
from repro.serve.placement import bucket_b_bytes
from repro.serve.request import COMPLETED

from test_serve import fast_requests

#: a bucket key shaped like the batcher's: (N, K, dtype, digest)
KEY_A = (64, 32, "f32", "digest-a")    # B = 8 KiB
KEY_B = (64, 64, "f32", "digest-b")    # B = 16 KiB


def manager(mode="static", n_clusters=4, budget=1 << 20, max_replicas=2,
            promote_after=2, cpu_bw=4e10):
    return PlacementManager(
        mode=mode, n_clusters=n_clusters, budget_bytes=budget,
        max_replicas=max_replicas, promote_after=promote_after,
        cpu_bw=cpu_bw,
    )


def scheduler(machine, n_clusters=4, health=None, placement=None):
    return Scheduler(
        n_clusters=n_clusters, policy="least_loaded", cold_tune_s=0.0,
        machine=machine, health=health, placement=placement,
    )


class TestManagerSemantics:
    def test_rejects_off_mode(self):
        with pytest.raises(PlanError, match="static"):
            manager(mode="off")

    def test_bucket_b_bytes(self):
        assert bucket_b_bytes(KEY_A) == 64 * 32 * 4
        assert bucket_b_bytes((8, 8, "f64", "x")) == 8 * 8 * 8

    def test_static_promotes_on_first_batch(self, machine):
        pm = manager(mode="static")
        sched = scheduler(machine, placement=pm)
        staged = pm.on_close(KEY_A, sched, now=0.0)
        assert len(staged) == 2              # max_replicas
        assert pm.sets["digest-a"].replicated
        assert pm.promotions == 1

    def test_adaptive_waits_for_traffic(self, machine):
        pm = manager(mode="adaptive", promote_after=3)
        sched = scheduler(machine, placement=pm)
        assert pm.on_close(KEY_A, sched, now=0.0) == []
        assert pm.on_close(KEY_A, sched, now=0.1) == []
        staged = pm.on_close(KEY_A, sched, now=0.2)
        assert len(staged) == 2
        # staging charges land on the cluster timelines
        for cluster, start, end in staged:
            assert end > start
            assert sched.backends[cluster].busy_until_s == end

    def test_promotion_targets_least_loaded(self, machine):
        pm = manager(mode="static", max_replicas=2)
        sched = scheduler(machine, placement=pm)
        sched.backends[0].charge(0.0, 5.0)   # busiest
        sched.backends[1].charge(0.0, 3.0)
        staged = pm.on_close(KEY_A, sched, now=0.0)
        assert sorted(c for c, _s, _e in staged) == [2, 3]

    def test_staging_never_counts_as_a_batch(self, machine):
        pm = manager(mode="static")
        sched = scheduler(machine, placement=pm)
        pm.on_close(KEY_A, sched, now=0.0)
        assert all(b.batches == 0 for b in sched.backends)
        assert any(b.busy_s > 0 for b in sched.backends)

    def test_lru_demotion_under_budget(self, machine):
        # budget fits one 16 KiB replica per cluster, not A + B together
        pm = manager(mode="static", budget=16 << 10, max_replicas=4)
        sched = scheduler(machine, placement=pm)
        pm.on_close(KEY_A, sched, now=0.0)
        pm.use_replica(KEY_A, 0, now=0.5)    # refresh A's LRU stamp
        pm.on_close(KEY_B, sched, now=1.0)   # needs 16 KiB: evicts A
        assert not pm.sets["digest-a"].clusters
        assert len(pm.sets["digest-b"].clusters) == 4
        assert pm.demotions == 4
        assert max(pm.peak_bytes) <= 16 << 10

    def test_thrash_guard_after_full_eviction(self, machine):
        pm = manager(mode="static", budget=16 << 10, max_replicas=4,
                     promote_after=2)
        sched = scheduler(machine, placement=pm)
        pm.on_close(KEY_A, sched, now=0.0)
        pm.on_close(KEY_B, sched, now=1.0)   # evicts A everywhere
        st = pm.sets["digest-a"]
        assert not st.replicated
        # one fresh batch is not enough to re-promote (promote_after=2)
        assert pm.on_close(KEY_A, sched, now=2.0) == []
        assert pm.on_close(KEY_A, sched, now=3.0) != []

    def test_oversized_b_never_promoted(self, machine):
        pm = manager(mode="static", budget=4 << 10)
        sched = scheduler(machine, placement=pm)
        assert pm.on_close(KEY_B, sched, now=0.0) == []   # 16 KiB > 4 KiB
        assert pm.promotions == 0

    def test_use_replica_hit_miss_and_restage(self, machine):
        pm = manager(mode="static", max_replicas=2)
        sched = scheduler(machine, placement=pm)
        assert not pm.use_replica(KEY_A, 0, now=0.0)      # unknown digest
        staged = pm.on_close(KEY_A, sched, now=0.0)
        holders = [c for c, _s, _e in staged]
        off = next(i for i in range(4) if i not in holders)
        assert pm.use_replica(KEY_A, holders[0], now=1.0)
        assert pm.restages == 0
        assert not pm.use_replica(KEY_A, off, now=2.0)    # off-holder
        assert pm.restages == 1
        assert pm.hits == 1

    def test_report_roundtrip(self, machine):
        pm = manager(mode="static")
        sched = scheduler(machine, placement=pm)
        pm.on_close(KEY_A, sched, now=0.0)
        rep = pm.report()
        assert rep.mode == "static"
        assert rep.replica_sets == 1
        assert rep.promotions == 1
        assert [e.kind for e in rep.events].count("promote") == 1
        assert "replica set" in rep.describe()


class TestQuarantineInteraction:
    def _quarantine(self, sched, idx, now=0.0):
        sched.note_fault(idx, now)
        assert sched.health[idx].state == "quarantined"

    def test_all_quarantined_fail_open_honors_replicas(self, machine):
        pm = manager(mode="static", max_replicas=1)
        sched = scheduler(
            machine, health=HealthPolicy(fault_threshold=1, cooldown_s=1.0,
                                         max_cooldown_s=4.0),
            placement=pm,
        )
        (holder, _s, _e), = pm.on_close(KEY_A, sched, now=0.0)
        for i in range(4):
            self._quarantine(sched, i)
        # fail-open: the full pool is routable, so the replica holder
        # still wins the binding — locality survives the sick pool
        backend = sched.pick_backend(0.1, key=KEY_A)
        assert backend.idx == holder

    def test_quarantined_holder_routes_to_healthy_holder(self, machine):
        pm = manager(mode="static", max_replicas=2)
        sched = scheduler(
            machine, health=HealthPolicy(fault_threshold=1, cooldown_s=1.0,
                                         max_cooldown_s=4.0),
            placement=pm,
        )
        staged = pm.on_close(KEY_A, sched, now=0.0)
        holders = [c for c, _s, _e in staged]
        self._quarantine(sched, holders[0])
        backend = sched.pick_backend(0.1, key=KEY_A)
        assert backend.idx == holders[1]

    def test_all_holders_quarantined_falls_back_and_restages(self, machine):
        pm = manager(mode="static", max_replicas=2)
        sched = scheduler(
            machine, health=HealthPolicy(fault_threshold=1, cooldown_s=1.0,
                                         max_cooldown_s=4.0),
            placement=pm,
        )
        staged = pm.on_close(KEY_A, sched, now=0.0)
        holders = [c for c, _s, _e in staged]
        for idx in holders:
            self._quarantine(sched, idx)
        backend = sched.pick_backend(0.1, key=KEY_A)
        assert backend.idx not in holders     # policy fallback binding
        # ... and the engine-side accounting calls it a re-stage
        assert not pm.use_replica(KEY_A, backend.idx, now=0.1)
        assert pm.restages == 1

    def test_edf_pull_prefers_idle_holder(self, machine):
        pm = manager(mode="static", max_replicas=2)
        sched = Scheduler(
            n_clusters=4, policy="edf", cold_tune_s=0.0,
            machine=machine, placement=pm,
        )
        staged = pm.on_close(KEY_A, sched, now=0.0)
        holders = sorted(c for c, _s, _e in staged)
        now = max(e for _c, _s, e in staged)
        backend = sched.idle_backend(now, key=KEY_A)
        assert backend.idx in holders
        # without a key the pull keeps its lowest-index-idle rule
        assert sched.idle_backend(now).idx == 0


class TestSingleBucketStreams:
    def test_fewer_batches_than_clusters(self):
        """K < n_clusters: a short single-bucket stream stays correct."""
        # one shape class, one B variant -> exactly one bucket; three
        # single-request batches on a four-cluster pool
        requests = [
            r for r in fast_requests(n=12, rate=30_000, seed=5)
            if r.klass == "tiny"
        ][:3]
        report = serve(requests, ServeConfig(
            policy="least_loaded", max_batch=1,
            replicate_b="adaptive", promote_after=2,
        ))
        assert report.completed == len(report.records) == 3
        assert all(r.status == COMPLETED for r in report.records)
        placement = report.placement
        # the digest got hot mid-stream; replicas never exceed the pool
        assert placement.replica_sets <= 1
        for st_peak in placement.peak_bytes:
            assert st_peak <= report.config.replica_budget_bytes

    def test_single_batch_stream_never_promotes_adaptively(self):
        requests = [fast_requests(n=4, rate=30_000, seed=6)[0]]
        report = serve(requests, ServeConfig(
            policy="fifo", replicate_b="adaptive", promote_after=2,
        ))
        assert report.completed == 1
        assert report.placement.promotions == 0
        assert report.placement.hits == 0
