"""Baselines: roofline model and the OpenBLAS-on-CPU model."""

import pytest

from repro.baselines.cpu_openblas import (
    kernel_efficiency,
    openblas_sgemm,
    threads_used,
)
from repro.baselines.roofline import ridge_intensity, roofline
from repro.core.shapes import GemmShape


class TestRoofline:
    def test_memory_bound_small_ai(self, cluster):
        pt = roofline(GemmShape(2**20, 8, 8), cluster)
        assert pt.memory_bound
        assert pt.max_gflops == pt.memory_bound_gflops

    def test_compute_bound_large_square(self, cluster):
        pt = roofline(GemmShape(8192, 8192, 8192), cluster)
        assert not pt.memory_bound
        assert pt.max_gflops == pytest.approx(cluster.peak_flops / 1e9)

    def test_scales_with_cores(self, cluster):
        big = GemmShape(8192, 8192, 8192)
        assert roofline(big, cluster, n_cores=4).max_gflops == pytest.approx(
            roofline(big, cluster, n_cores=8).max_gflops / 2
        )

    def test_ridge_point(self, cluster):
        ridge = ridge_intensity(cluster)
        assert ridge == pytest.approx(cluster.peak_flops / cluster.ddr_bandwidth)

    def test_uses_theoretical_bandwidth(self, cluster):
        """The paper computes the roofline with theoretical bandwidth."""
        shape = GemmShape(2**20, 8, 8)
        pt = roofline(shape, cluster)
        assert pt.memory_bound_gflops == pytest.approx(
            shape.arithmetic_intensity * 42.6
        )


class TestThreadsUsed:
    def test_big_problem_uses_all_cores(self, machine):
        assert threads_used(GemmShape(2**20, 96, 512), machine.cpu) == 16

    def test_tiny_mn_starves_threads(self, machine):
        assert threads_used(GemmShape(32, 32, 2**20), machine.cpu) < 16

    def test_single_thread_floor(self, machine):
        assert threads_used(GemmShape(8, 8, 2**20), machine.cpu) == 1


class TestKernelEfficiency:
    def test_deep_k_beats_shallow_k(self, machine):
        deep = kernel_efficiency(GemmShape(4096, 96, 4096), machine.cpu)
        shallow = kernel_efficiency(GemmShape(4096, 96, 32), machine.cpu)
        assert deep > shallow

    def test_tile_quantization_penalty(self, machine):
        # N=12 fills the nr=12 tile; N=13 wastes almost half of two tiles
        full = kernel_efficiency(GemmShape(4096, 12, 512), machine.cpu)
        ragged = kernel_efficiency(GemmShape(4096, 13, 512), machine.cpu)
        assert ragged < full

    def test_bounded_by_peak_fraction(self, machine):
        eff = kernel_efficiency(GemmShape(2**20, 96, 2**20), machine.cpu)
        assert eff <= machine.cpu.kernel_peak_fraction


class TestOpenblasModel:
    def test_large_regular_gemm_is_efficient(self, machine):
        """The premise of the paper: traditional BLAS does well on large
        regular shapes."""
        est = openblas_sgemm(GemmShape(8192, 8192, 8192), machine.cpu)
        assert est.efficiency > 0.6
        assert not est.memory_bound

    def test_irregular_shapes_are_inefficient(self, machine):
        for shape in [
            GemmShape(65536, 32, 32),
            GemmShape(32, 32, 65536),
            GemmShape(20480, 32, 20480),
        ]:
            est = openblas_sgemm(shape, machine.cpu)
            assert est.efficiency < 0.15

    def test_irregular_shapes_are_memory_bound(self, machine):
        est = openblas_sgemm(GemmShape(2**20, 32, 32), machine.cpu)
        assert est.memory_bound

    def test_gflops_consistent(self, machine):
        shape = GemmShape(4096, 96, 4096)
        est = openblas_sgemm(shape, machine.cpu)
        assert est.gflops == pytest.approx(shape.flops / est.seconds / 1e9)

    def test_seconds_decomposition(self, machine):
        est = openblas_sgemm(GemmShape(4096, 96, 4096), machine.cpu)
        assert est.seconds == pytest.approx(
            max(est.compute_seconds, est.memory_seconds) + est.overhead_seconds
        )

    def test_paper_fig7_regime(self, machine, cluster):
        """ftIMM's efficiency advantage on the three type sweeps must land
        in the paper's <= ~3.1x band (checked loosely; fig7 checks tightly)."""
        from repro.core.ftimm import ftimm_gemm

        ratios = []
        for m, n, k in [(65536, 96, 96), (32, 32, 65536), (20480, 32, 20480)]:
            ft = ftimm_gemm(m, n, k, timing="analytic")
            cpu = openblas_sgemm(GemmShape(m, n, k), machine.cpu)
            ratios.append(ft.efficiency / cpu.efficiency)
        assert max(ratios) > 1.0
        assert max(ratios) < 5.0
