"""Heterogeneous CPU + DSP co-execution."""

import numpy as np
import pytest

from repro.core.hetero import best_split, hetero_gemm
from repro.core.shapes import GemmShape
from repro.errors import ShapeError
from repro.hw.config import default_machine

from conftest import assert_gemm_close, make_operands


class TestSplit:
    def test_split_in_range(self, machine):
        rows = best_split(GemmShape(2**18, 32, 32), machine)
        assert 0 <= rows < 2**18

    def test_split_makespan_optimality_on_grid(self, machine):
        """The chosen split must beat DSP-only and any coarse alternative."""
        shape = GemmShape(2**18, 32, 32)
        chosen = hetero_gemm(shape.m, shape.n, shape.k, machine=machine)
        for frac in (0.0, 0.05, 0.15, 0.24):
            rows = int(shape.m * frac)
            alt = hetero_gemm(
                shape.m, shape.n, shape.k, machine=machine, cpu_rows=rows
            )
            assert chosen.seconds <= alt.seconds + 1e-12

    def test_invalid_cpu_rows_rejected(self):
        with pytest.raises(ShapeError):
            hetero_gemm(100, 32, 32, cpu_rows=100)
        with pytest.raises(ShapeError):
            hetero_gemm(100, 32, 32, cpu_rows=-1)


class TestFunctional:
    def test_correctness_with_split(self):
        shape = GemmShape(1500, 32, 96)
        data, ref = make_operands(shape, seed=7)
        result = hetero_gemm(
            shape.m, shape.n, shape.k,
            a=data.a, b=data.b, c=data.c, cpu_rows=300,
        )
        assert_gemm_close(data.c, ref, shape.k)
        assert result.cpu_rows == 300
        assert result.dsp_rows == 1200

    def test_correctness_with_auto_split(self):
        shape = GemmShape(4096, 16, 64)
        data, ref = make_operands(shape, seed=8)
        hetero_gemm(shape.m, shape.n, shape.k, a=data.a, b=data.b, c=data.c)
        assert_gemm_close(data.c, ref, shape.k)

    def test_zero_cpu_rows_is_dsp_only(self):
        shape = GemmShape(512, 32, 64)
        data, ref = make_operands(shape, seed=9)
        result = hetero_gemm(
            shape.m, shape.n, shape.k,
            a=data.a, b=data.b, c=data.c, cpu_rows=0,
        )
        assert_gemm_close(data.c, ref, shape.k)
        assert result.cpu_seconds == 0.0
        assert result.cpu_share == 0.0


class TestTiming:
    def test_makespan_is_max_of_sides(self):
        r = hetero_gemm(2**18, 32, 32, cpu_rows=2**14)
        assert r.seconds == pytest.approx(max(r.cpu_seconds, r.dsp_seconds))

    def test_gain_never_below_one_for_auto_split(self):
        for m, n, k in [(2**18, 32, 32), (20480, 32, 20480)]:
            assert hetero_gemm(m, n, k).gain_vs_dsp_only >= 1.0 - 1e-9

    def test_gflops(self):
        r = hetero_gemm(2**18, 32, 32)
        assert r.gflops == pytest.approx(
            GemmShape(2**18, 32, 32).flops / r.seconds / 1e9
        )


class TestExperiment:
    def test_ext_hetero_claims_hold(self):
        from repro.experiments import ext_hetero

        for result in ext_hetero.run():
            for claim in result.claims:
                assert claim.holds, f"{claim.name}: {claim.measured}"
