"""Transformer attention workload."""

import numpy as np
import pytest

from repro.core.ftimm import ftimm_gemm
from repro.core.shapes import GemmType
from repro.workloads.transformer import (
    AttentionConfig,
    STANDARD_CONFIGS,
    attention_forward,
)


def reference_attention(x, w_q, w_k, w_v, n_heads):
    """Plain-NumPy multi-head attention (merged-head context)."""
    seq_len, d_model = x.shape
    d_head = d_model // n_heads
    out = np.empty((seq_len, d_model), dtype=np.float32)
    for h in range(n_heads):
        cols = slice(h * d_head, (h + 1) * d_head)
        q = x @ w_q[:, cols]
        k = x @ w_k[:, cols]
        v = x @ w_v[:, cols]
        scores = (q @ k.T) / np.sqrt(d_head)
        scores -= scores.max(axis=1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=1, keepdims=True)
        out[:, cols] = weights @ v
    return out


class TestShapes:
    def test_head_projection_is_type1(self):
        cfg = AttentionConfig("t", d_model=768, n_heads=12, seq_len=4096)
        shape = cfg.gemm_shapes()["head_projection"]
        assert shape.n == 64
        assert shape.classify() is GemmType.TALL_SKINNY_TIMES_SMALL

    def test_context_is_type3_for_long_sequences(self):
        cfg = AttentionConfig("t", d_model=1024, n_heads=16, seq_len=8192)
        shape = cfg.gemm_shapes()["context"]
        assert shape.classify() is GemmType.REGULAR_TIMES_TALL_SKINNY

    def test_output_projection_is_regular(self):
        cfg = STANDARD_CONFIGS[0]
        shape = cfg.gemm_shapes()["output_projection"]
        assert shape.classify() is GemmType.REGULAR

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            AttentionConfig("bad", d_model=100, n_heads=3, seq_len=16).d_head

    def test_standard_configs_have_head_dim_64(self):
        assert all(cfg.d_head == 64 for cfg in STANDARD_CONFIGS)


class TestForward:
    @pytest.fixture()
    def operands(self):
        rng = np.random.default_rng(4)
        d_model, n_heads, seq_len = 128, 2, 48
        x = rng.standard_normal((seq_len, d_model)).astype(np.float32) * 0.1
        ws = [
            rng.standard_normal((d_model, d_model)).astype(np.float32) * 0.1
            for _ in range(3)
        ]
        return x, ws, n_heads

    def test_numpy_gemm_matches_reference(self, operands):
        x, (w_q, w_k, w_v), n_heads = operands
        out = attention_forward(x, w_q, w_k, w_v, n_heads)
        ref = reference_attention(x, w_q, w_k, w_v, n_heads)
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_simulated_ftimm_runs_real_attention(self, operands):
        x, (w_q, w_k, w_v), n_heads = operands

        def ftimm_fn(a, b, c):
            ftimm_gemm(a.shape[0], b.shape[1], a.shape[1],
                       a=a, b=b, c=c, timing="none")

        out = attention_forward(x, w_q, w_k, w_v, n_heads, gemm=ftimm_fn)
        ref = reference_attention(x, w_q, w_k, w_v, n_heads)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_attention_rows_sum_to_one_effect(self, operands):
        """Context rows are convex combinations of V rows: bounded by the
        per-column min/max of V (a structural sanity property)."""
        x, (w_q, w_k, w_v), n_heads = operands
        d_head = x.shape[1] // n_heads
        out = attention_forward(x, w_q, w_k, w_v, n_heads)
        v0 = x @ w_v[:, :d_head]
        assert np.all(out[:, :d_head] <= v0.max(axis=0) + 1e-4)
        assert np.all(out[:, :d_head] >= v0.min(axis=0) - 1e-4)
