"""The kernel-gallery doc generator."""

from repro.experiments.kernel_gallery import F32_SPECS, F64_SPECS, gallery_markdown, main


class TestGallery:
    def test_markdown_covers_all_specs(self):
        text = gallery_markdown()
        for m, n, k in F32_SPECS:
            assert f"## {m}x{n}x{k}" in text
        for m, n, k in F64_SPECS:
            assert f"## {m}x{n}x{k}/f64" in text
        assert "tgemm" in text

    def test_pipeline_tables_present(self):
        text = gallery_markdown()
        assert text.count("VFMULAS32") > len(F32_SPECS)
        assert "SVBCAST2" in text  # narrow-N kernels use dual broadcasts
        assert "SLDD" in text      # FP64 kernels use 64-bit scalar loads

    def test_main_writes_file(self, tmp_path, capsys):
        out = tmp_path / "KERNELS.md"
        main([str(out)])
        assert out.exists()
        assert "micro-kernel gallery" in out.read_text()
        assert str(out) in capsys.readouterr().out
