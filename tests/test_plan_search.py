"""Adaptive plan search: bounds, pruning identity, transfer, plan DB."""

import json

import pytest

from repro.core.autotune import autotune, k_plan_candidates, m_plan_candidates
from repro.core.plan_search import (
    PlanDB,
    PlanRecord,
    ShapeClass,
    default_plan_db,
    plan_bound,
)
from repro.core.shapes import GemmShape
from repro.errors import PlanError
from repro.obs import collecting

# shapes spanning every irregular type plus the degenerate edges
SHAPES = [
    (2048, 32, 2048),
    (65536, 32, 32),     # type 1: tall-skinny x small
    (32, 32, 65536),     # type 2: skinny-tall x tall-skinny
    (1024, 1, 4096),     # N = 1 edge
    (512, 96, 1),        # K = 1 edge
    (4096, 64, 512),
]


def _grid(shape, cluster):
    return [
        ("m", p) for p in m_plan_candidates(shape, cluster)
    ] + [
        ("k", p) for p in k_plan_candidates(shape, cluster)
    ]


class TestBound:
    def test_bound_never_exceeds_score(self, cluster, registry):
        """The lower bound must lower-bound the analytic model — always."""
        from repro.core.autotune import _score

        for m, n, k in SHAPES:
            shape = GemmShape(m, n, k)
            for strategy, plan in _grid(shape, cluster):
                bound = plan_bound(shape, cluster, strategy, plan)
                score = _score(shape, cluster, strategy, plan, registry)
                assert bound <= score.seconds, (
                    f"{shape} {strategy} {plan}: bound {bound} > "
                    f"score {score.seconds}"
                )

    def test_bound_rejects_unknown_strategy(self, cluster):
        with pytest.raises(PlanError):
            plan_bound(GemmShape(64, 32, 64), cluster, "tgemm", None)


class TestPrunedIdentity:
    @pytest.mark.parametrize("m,n,k", SHAPES)
    def test_best_plan_bit_identical(self, cluster, registry, m, n, k):
        shape = GemmShape(m, n, k)
        pruned = autotune(
            shape, cluster, registry, jobs=1, mode="pruned", plan_db=False
        )
        full = autotune(
            shape, cluster, registry, jobs=1, mode="exhaustive",
            plan_db=False,
        )
        assert pruned.best == full.best
        assert pruned.rule == full.rule
        assert pruned.n_candidates == full.n_candidates

    def test_pruning_actually_prunes(self, cluster, registry):
        result = autotune(
            GemmShape(2048, 32, 2048), cluster, registry, jobs=1,
            plan_db=False,
        )
        stats = result.stats
        assert stats.scored <= stats.generated // 2
        assert stats.pruned == stats.generated - stats.scored
        assert stats.bound_evals == stats.generated

    def test_counters(self, cluster, registry):
        with collecting() as reg:
            autotune(
                GemmShape(2048, 32, 2048), cluster, registry, jobs=1,
                plan_db=False,
            )
        snap = reg.snapshot()
        assert snap["tuner/bound_evals"]["value"] > 0
        assert snap["tuner/pruned"]["value"] > 0
        assert snap["tuner/searches"]["value"] == 1

    def test_unknown_mode_rejected(self, cluster):
        with pytest.raises(PlanError):
            autotune(GemmShape(64, 32, 64), cluster, mode="greedy")


class TestStackHint:
    def test_stack_hint_equals_stacked_shape(self, cluster, registry):
        """Hinted tuning is exactly tuning the stacked shape."""
        hinted = autotune(
            GemmShape(64, 32, 512), cluster, registry, jobs=1,
            plan_db=False, stack_hint=512,
        )
        stacked = autotune(
            GemmShape(512, 32, 512), cluster, registry, jobs=1,
            plan_db=False,
        )
        assert hinted.best == stacked.best
        assert hinted.shape == stacked.shape

    def test_stack_hint_validated(self, cluster):
        with pytest.raises(PlanError):
            autotune(GemmShape(64, 32, 512), cluster, stack_hint=0)


class TestShapeClass:
    def test_exact_class_distance_zero(self, cluster):
        a = ShapeClass.of(GemmShape(2048, 32, 2048), cluster)
        b = ShapeClass.of(GemmShape(2304, 32, 3000), cluster)
        assert a.distance(a) == 0.0
        assert a.distance(b) == b.distance(a) < 4.0

    def test_domain_mismatch_is_infinite(self, cluster):
        m_like = ShapeClass.of(GemmShape(65536, 32, 32), cluster)
        k_like = ShapeClass.of(GemmShape(32, 32, 65536), cluster)
        assert m_like.distance(k_like) == float("inf")

    def test_different_n_penalized(self, cluster):
        a = ShapeClass.of(GemmShape(2048, 32, 2048), cluster)
        b = ShapeClass.of(GemmShape(2048, 48, 2048), cluster)
        assert a.distance(b) >= 2.0

    def test_key_roundtrips_fields(self, cluster):
        sig = ShapeClass.of(GemmShape(2048, 32, 2048), cluster)
        assert sig.key().startswith("m/f32/n32/")


class TestPlanDB:
    def _record(self, cluster, shape=GemmShape(2048, 32, 2048)):
        result = autotune(shape, cluster, jobs=1, plan_db=False)
        import dataclasses

        return ShapeClass.of(shape, cluster), PlanRecord(
            strategy=result.best.strategy,
            plan_fields=dataclasses.asdict(result.best.plan),
            shape=(shape.m, shape.n, shape.k),
            seconds=result.best.seconds,
            validated=result.best.validated,
            scored=result.stats.scored,
        )

    def test_roundtrip_through_disk(self, cluster, tmp_path):
        sig, rec = self._record(cluster)
        db = PlanDB(tmp_path)
        db.put(sig, rec)
        reloaded = PlanDB(tmp_path).get(sig)
        assert reloaded == rec
        assert reloaded.plan == rec.plan

    def test_memory_only(self, cluster):
        sig, rec = self._record(cluster)
        db = PlanDB(None)
        db.put(sig, rec)
        assert db.get(sig) == rec
        assert db.path is None

    def test_nearest_prefers_exact(self, cluster, tmp_path):
        sig, rec = self._record(cluster)
        far_sig, far_rec = self._record(cluster, GemmShape(4096, 32, 512))
        db = PlanDB(tmp_path)
        db.put(sig, rec)
        db.put(far_sig, far_rec)
        found = db.nearest(sig)
        assert found is not None
        nsig, nrec, distance = found
        assert nsig == sig and distance == 0.0

    def test_corrupt_file_quarantined(self, cluster, tmp_path):
        db = PlanDB(tmp_path)
        db.path.parent.mkdir(parents=True, exist_ok=True)
        db.path.write_text("{ not json")
        with collecting() as reg:
            assert len(db) == 0
        assert not db.path.exists()
        assert db.path.with_name(db.path.name + ".bad").exists()
        assert reg.snapshot()["tuner/plandb/quarantined"]["value"] == 1

    def test_bad_entry_quarantined(self, cluster, tmp_path):
        sig, rec = self._record(cluster)
        db = PlanDB(tmp_path)
        db.put(sig, rec)
        blob = json.loads(db.path.read_text())
        blob[sig.key()]["record"]["plan"]["strategy"] = "nonsense"
        db.path.write_text(json.dumps(blob))
        fresh = PlanDB(tmp_path)
        assert len(fresh) == 0
        assert db.path.with_name(db.path.name + ".bad").exists()

    def test_lru_eviction_over_cap(self, cluster, tmp_path):
        sig_a, rec = self._record(cluster)
        sig_b = ShapeClass.of(GemmShape(4096, 32, 512), cluster)
        sig_c = ShapeClass.of(GemmShape(1024, 16, 1024), cluster)
        db = PlanDB(tmp_path, max_entries=2)
        with collecting() as reg:
            db.put(sig_a, rec)
            db.put(sig_b, rec)
            db.get(sig_a)            # refresh A: B becomes the LRU
            db.put(sig_c, rec)
        assert len(db) == 2
        assert db.get(sig_b) is None
        assert db.get(sig_a) is not None
        assert db.get(sig_c) is not None
        assert reg.snapshot()["tuner/plandb/evicted"]["value"] == 1
        # recency (and the eviction) survive the disk round-trip
        fresh = PlanDB(tmp_path, max_entries=2)
        assert len(fresh) == 2
        assert fresh.get(sig_b) is None

    def test_cap_must_be_positive(self, tmp_path):
        with pytest.raises(PlanError):
            PlanDB(tmp_path, max_entries=0)

    def test_generator_bump_invalidates_stale_entries(
        self, cluster, tmp_path
    ):
        sig, rec = self._record(cluster)
        other = ShapeClass.of(GemmShape(4096, 32, 512), cluster)
        db = PlanDB(tmp_path)
        db.put(sig, rec)
        db.put(other, rec)
        blob = json.loads(db.path.read_text())
        blob[sig.key()]["gen"] = 999   # tuned under another generator
        db.path.write_text(json.dumps(blob))
        with collecting() as reg:
            fresh = PlanDB(tmp_path)
            # only the stale entry is dropped; the file is not quarantined
            assert len(fresh) == 1
        assert fresh.get(sig) is None
        assert fresh.get(other) is not None
        assert reg.snapshot()["tuner/plandb/invalidated"]["value"] == 1
        assert not db.path.with_name(db.path.name + ".bad").exists()

    def test_default_db_honors_cache_env(self, monkeypatch, tmp_path):
        import repro.core.plan_search as ps

        monkeypatch.setattr(ps, "_default_db", None)
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        assert default_plan_db().root == tmp_path / "plans"
        monkeypatch.setattr(ps, "_default_db", None)
        monkeypatch.setenv("REPRO_KERNEL_CACHE", "off")
        assert default_plan_db().root is None


class TestTransfer:
    def test_warm_start_preserves_identity(self, cluster, registry, tmp_path):
        """A transferred warm start reorders the search, never its result."""
        db = PlanDB(tmp_path)
        shape = GemmShape(2048, 32, 2048)
        autotune(shape, cluster, registry, jobs=1, plan_db=db)
        assert len(db) == 1

        near = GemmShape(3072, 32, 2048)
        warm = autotune(near, cluster, registry, jobs=1, plan_db=db)
        cold = autotune(
            near, cluster, registry, jobs=1, plan_db=False
        )
        assert warm.stats.transfer == "warm"
        assert warm.best == cold.best

    def test_short_circuit_requires_explicit_tol(
        self, cluster, registry, tmp_path
    ):
        db = PlanDB(tmp_path)
        shape = GemmShape(2048, 32, 2048)
        autotune(shape, cluster, registry, jobs=1, plan_db=db)

        near = GemmShape(2304, 32, 2048)
        no_tol = autotune(near, cluster, registry, jobs=1, plan_db=db)
        assert no_tol.stats.transfer == "warm"
        assert not no_tol.best.transferred

        with collecting() as reg:
            # a *different* same-class shape: short-circuit, not replay
            tol = autotune(
                GemmShape(2560, 32, 2048), cluster, registry, jobs=1,
                plan_db=db, transfer_tol=0.25,
            )
        assert tol.stats.transfer == "short_circuit"
        assert tol.best.transferred
        assert tol.stats.scored == 0
        snap = reg.snapshot()
        assert snap["tuner/transfer_short_circuits"]["value"] == 1

    def test_exact_shape_replays_prior_answer(
        self, cluster, registry, tmp_path
    ):
        """Repeating a searched shape under explicit tol is a memo hit."""
        db = PlanDB(tmp_path)
        shape = GemmShape(2048, 32, 2048)
        first = autotune(shape, cluster, registry, jobs=1, plan_db=db)
        again = autotune(
            shape, cluster, registry, jobs=1, plan_db=db, transfer_tol=0.25
        )
        assert again.stats.transfer == "replay"
        assert again.stats.bound_evals == 0
        assert again.best.transferred
        assert (again.best.strategy, again.best.plan, again.best.seconds) == (
            first.best.strategy, first.best.plan, first.best.seconds
        )

    def test_replay_requires_explicit_tol(self, cluster, registry, tmp_path):
        db = PlanDB(tmp_path)
        shape = GemmShape(2048, 32, 2048)
        autotune(shape, cluster, registry, jobs=1, plan_db=db)
        again = autotune(shape, cluster, registry, jobs=1, plan_db=db)
        assert again.stats.transfer == "warm"
        assert not again.best.transferred

    def test_short_circuit_not_stored_back(self, cluster, registry, tmp_path):
        db = PlanDB(tmp_path)
        autotune(
            GemmShape(2048, 32, 2048), cluster, registry, jobs=1, plan_db=db
        )
        n_before = len(db)
        autotune(
            GemmShape(2304, 32, 2048), cluster, registry, jobs=1,
            plan_db=db, transfer_tol=0.25,
        )
        assert len(db) == n_before

    def test_no_transfer_flag(self, cluster, registry, tmp_path):
        db = PlanDB(tmp_path)
        autotune(
            GemmShape(2048, 32, 2048), cluster, registry, jobs=1, plan_db=db
        )
        off = autotune(
            GemmShape(3072, 32, 2048), cluster, registry, jobs=1,
            plan_db=db, transfer=False,
        )
        assert off.stats.transfer == "off"

    def test_transfer_miss_on_empty_db(self, cluster, registry, tmp_path):
        with collecting() as reg:
            result = autotune(
                GemmShape(2048, 32, 2048), cluster, registry, jobs=1,
                plan_db=PlanDB(tmp_path),
            )
        assert result.stats.transfer == "miss"
        assert reg.snapshot()["tuner/transfer_misses"]["value"] == 1


class TestServeBatchAware:
    def test_expected_stack_hints_deterministic(self):
        from repro.serve.loadgen import make_requests
        from repro.serve.server import expected_stack_hints

        reqs = make_requests(
            "transformer", rate_rps=4000, n_requests=60, seed=7
        )
        h1 = expected_stack_hints(reqs, 8)
        h2 = expected_stack_hints(list(reqs), 8)
        assert h1 == h2
        assert all(m >= 1 for m in h1.values())

    def test_warm_search_mode_and_measured_penalty(self, machine):
        from repro.serve.scheduler import DEFAULT_COLD_TUNE_S, Scheduler

        sched = Scheduler(
            n_clusters=2, policy="fifo", cold_tune_s=None, machine=machine
        )
        report = sched.warm(
            [(GemmShape(128, 64, 256), "f32")],
            stack_hints={(64, 256, "f32"): 512},
            tune="search",
        )
        assert report.mode == "search"
        assert report.hinted == 1
        assert report.n_buckets == 1
        assert report.measured_tune_s is not None
        # warmed bucket is free; an unknown one charges the measured mean
        assert sched.tune_penalty((64, 256, "f32")) == 0.0
        assert sched.tune_penalty((8, 8, "f32")) == pytest.approx(
            report.measured_tune_s
        )
        # a fresh scheduler with nothing measured charges the default
        cold = Scheduler(
            n_clusters=2, policy="fifo", cold_tune_s=None, machine=machine
        )
        assert cold.tune_penalty((8, 8, "f32")) == DEFAULT_COLD_TUNE_S

    def test_warm_rejects_unknown_mode(self, machine):
        from repro.serve.scheduler import Scheduler

        sched = Scheduler(
            n_clusters=1, policy="fifo", cold_tune_s=1e-4, machine=machine
        )
        with pytest.raises(PlanError):
            sched.warm([(GemmShape(64, 32, 64), "f32")], tune="genetic")

    def test_serve_latency_identical_across_warmup_modes(self):
        from repro.serve.loadgen import make_requests
        from repro.serve.server import ServeConfig, serve

        reqs = make_requests(
            "transformer", rate_rps=4000, n_requests=30, seed=3
        )
        r_rule = serve(reqs, ServeConfig(warmup_tune="rule"))
        r_search = serve(reqs, ServeConfig(warmup_tune="search"))
        assert (
            [(r.req_id, r.latency_s) for r in r_rule.records]
            == [(r.req_id, r.latency_s) for r in r_search.records]
        )
