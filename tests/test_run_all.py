"""The run_all orchestrator: markdown + JSON generation."""

import json

from repro.analysis.tables import Claim, ExperimentResult, Series
from repro.experiments import run_all


class _StubModule:
    __name__ = "stub"

    @staticmethod
    def run():
        return [
            ExperimentResult(
                exp_id="stub1",
                title="stub experiment",
                x_label="x",
                y_label="y",
                series=[Series("s", [1, 2], [3.0, 4.0])],
                claims=[Claim("works", "yes", "measured", True)],
            ),
            ExperimentResult(
                exp_id="stub2",
                title="second",
                x_label="x",
                y_label="y",
                claims=[Claim("fails", "no", "sadly", False)],
            ),
        ]


class TestWriteMarkdown:
    def results(self):
        return _StubModule.run()

    def test_markdown_structure(self, tmp_path, capsys):
        out = tmp_path / "EXP.md"
        run_all.write_markdown(self.results(), out)
        text = out.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "**Claims held: 1 / 2.**" in text
        assert "### stub1" in text and "### stub2" in text
        assert "**no**" in text  # the failed claim is flagged
        assert str(out) in capsys.readouterr().out

    def test_json_export(self, tmp_path):
        out = tmp_path / "data.json"
        run_all.write_json(self.results(), out)
        data = json.loads(out.read_text())
        assert len(data) == 2
        assert data[0]["exp_id"] == "stub1"
        assert data[0]["series"][0]["y"] == [3.0, 4.0]
        assert data[1]["claims"][0]["holds"] is False


class TestMainPlumbing:
    def test_main_with_stubbed_modules(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(run_all, "MODULES", [_StubModule])
        md = tmp_path / "EXP.md"
        js = tmp_path / "data.json"
        run_all.main([str(md), "--json", str(js)])
        assert md.exists() and js.exists()
        out = capsys.readouterr().out
        assert "stub1" in out
        assert "1/2 claims hold" in out

    def test_module_list_covers_every_experiment(self):
        """Everything importable under repro.experiments with run() must be
        registered in run_all (so EXPERIMENTS.md can't silently go stale)."""
        import repro.experiments as exp

        registered = {m.__name__ for m in run_all.MODULES}
        for name in exp.__all__:
            module = getattr(exp, name)
            if hasattr(module, "run"):
                assert module.__name__ in registered, name
