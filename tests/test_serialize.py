"""Kernel program serialization round-trips."""

import json

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa.interp import run_program
from repro.isa.scheduler import schedule_loop
from repro.kernels.serialize import (
    instr_from_dict,
    instr_to_dict,
    program_from_dict,
    program_to_dict,
)


class TestInstrRoundTrip:
    def test_all_body_instrs_round_trip(self, registry):
        kern = registry.ftimm(6, 64, 32)
        for block in kern.program.blocks:
            for instr in [*block.setup, *block.body, *block.teardown]:
                restored = instr_from_dict(instr_to_dict(instr))
                assert restored == instr

    def test_json_compatible(self, registry):
        kern = registry.ftimm(8, 96, 16)
        text = json.dumps(program_to_dict(kern.program))
        assert "VFMULAS32" in text

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IsaError):
            instr_from_dict({"op": "FROBNICATE"})


class TestProgramRoundTrip:
    def test_structure_preserved(self, registry):
        kern = registry.ftimm(14, 32, 64)
        restored = program_from_dict(program_to_dict(kern.program))
        assert len(restored.blocks) == len(kern.program.blocks)
        for old, new in zip(kern.program.blocks, restored.blocks):
            assert old.trip == new.trip
            assert old.rows == new.rows
            assert old.body == new.body
        assert restored.meta["k_u"] == kern.program.meta["k_u"]

    def test_restored_program_schedules_identically(self, registry, core):
        kern = registry.ftimm(6, 64, 64)
        restored = program_from_dict(program_to_dict(kern.program))
        ii_new = schedule_loop(restored.blocks[0].body, core.latencies).ii
        assert ii_new == kern.ii

    def test_restored_program_interprets_identically(self, registry):
        kern = registry.ftimm(4, 48, 8)
        restored = program_from_dict(program_to_dict(kern.program))
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, kern.compute_k)).astype(np.float32)
        b = rng.standard_normal((kern.compute_k, kern.compute_n)).astype(np.float32)
        c1 = np.zeros((4, kern.compute_n), np.float32)
        c2 = c1.copy()
        run_program(kern.program, {"A": a, "B": b.copy(), "C": c1})
        run_program(restored, {"A": a, "B": b.copy(), "C": c2})
        np.testing.assert_array_equal(c1, c2)

    def test_f64_program_round_trips(self, registry):
        kern = registry.ftimm(6, 32, 16, dtype="f64")
        restored = program_from_dict(program_to_dict(kern.program))
        assert restored.meta["dtype"] == "f64"
        assert restored.blocks[0].body == kern.program.blocks[0].body

    def test_registers_used_stable(self, registry):
        kern = registry.ftimm(10, 96, 32)
        restored = program_from_dict(program_to_dict(kern.program))
        assert restored.registers_used() == kern.program.registers_used()


class TestScheduleRoundTrip:
    def test_body_schedule_round_trips(self, registry, core):
        from repro.isa.units import units_for
        from repro.kernels.serialize import schedule_from_dict, schedule_to_dict

        kern = registry.ftimm(8, 96, 32)
        sched = kern.body_schedules[0]
        restored = schedule_from_dict(
            schedule_to_dict(sched),
            kern.program.blocks[0].body,
            core.latencies,
            units_for(core),
        )
        assert restored.ii == sched.ii
        assert restored.times == sched.times
        assert restored.assignments == sched.assignments

    def test_empty_schedule_round_trips(self, core):
        from repro.isa.units import units_for
        from repro.kernels.serialize import schedule_from_dict, schedule_to_dict
        from repro.isa.scheduler import Schedule

        units = units_for(core)
        empty = Schedule([], [], [], 0, [], units)
        restored = schedule_from_dict(
            schedule_to_dict(empty), [], core.latencies, units
        )
        assert restored.times == [] and restored.ii == 0

    def test_length_mismatch_rejected(self, registry, core):
        from repro.isa.units import units_for
        from repro.kernels.serialize import schedule_from_dict, schedule_to_dict

        kern = registry.ftimm(8, 96, 32)
        d = schedule_to_dict(kern.body_schedules[0])
        d["times"] = d["times"][:-1]
        with pytest.raises(IsaError):
            schedule_from_dict(
                d, kern.program.blocks[0].body, core.latencies, units_for(core)
            )

    def test_tampered_schedule_rejected(self, registry, core):
        # a hand-edited file cannot smuggle in an illegal schedule: edges
        # are recomputed and the dependence check re-run on load
        from repro.errors import ScheduleError
        from repro.isa.units import units_for
        from repro.kernels.serialize import schedule_from_dict, schedule_to_dict

        kern = registry.ftimm(8, 96, 32)
        d = schedule_to_dict(kern.body_schedules[0])
        d["times"] = [0] * len(d["times"])
        with pytest.raises(ScheduleError):
            schedule_from_dict(
                d, kern.program.blocks[0].body, core.latencies, units_for(core)
            )


class TestKernelRoundTrip:
    def _restored(self, registry, core, *spec, **kw):
        from repro.kernels.serialize import kernel_from_dict, kernel_to_dict

        kern = registry.ftimm(*spec, **kw)
        blob = json.loads(json.dumps(kernel_to_dict(kern)))
        return kern, kernel_from_dict(blob, core)

    def test_metadata_preserved(self, registry, core):
        kern, restored = self._restored(registry, core, 6, 64, 64)
        assert restored.spec == kern.spec
        assert restored.cycles == kern.cycles
        assert restored.compute_n == kern.compute_n
        assert restored.compute_k == kern.compute_k
        assert restored.blocks == kern.blocks
        assert restored.name == kern.name
        for old, new in zip(kern.body_schedules, restored.body_schedules):
            assert (new.ii, new.times, new.assignments) == (
                old.ii, old.times, old.assignments
            )

    def test_execution_bit_identical(self, registry, core):
        kern, restored = self._restored(registry, core, 6, 96, 32)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 32)).astype(np.float32)
        b = rng.standard_normal((32, 96)).astype(np.float32)
        c1 = rng.standard_normal((6, 96)).astype(np.float32)
        c2 = c1.copy()
        kern.apply_isa(a, b, c1, mode="compiled")
        restored.apply_isa(a, b, c2, mode="compiled")
        assert np.array_equal(c1, c2)

    def test_f64_kernel_round_trips(self, registry, core):
        kern, restored = self._restored(registry, core, 6, 32, 16, dtype="f64")
        assert restored.spec.dtype == "f64"
        assert restored.cycles == kern.cycles

    def test_format_mismatch_rejected(self, registry, core):
        from repro.kernels.serialize import kernel_from_dict, kernel_to_dict

        d = kernel_to_dict(registry.ftimm(6, 64, 64))
        d["format"] = 999
        with pytest.raises(IsaError):
            kernel_from_dict(d, core)

    def test_schedule_count_mismatch_rejected(self, registry, core):
        from repro.kernels.serialize import kernel_from_dict, kernel_to_dict

        d = kernel_to_dict(registry.ftimm(6, 64, 64))
        d["body_schedules"] = []
        with pytest.raises(IsaError):
            kernel_from_dict(d, core)


class TestDiskCache:
    def test_store_load_round_trip(self, tmp_path, core):
        from repro.kernels.registry import KernelDiskCache, KernelRegistry
        from repro.obs import collecting

        with collecting() as obs:
            first = KernelRegistry(core, disk=KernelDiskCache(tmp_path))
            k1 = first.ftimm(6, 96, 48)
        assert obs.counter("kernels/cache/disk_miss").value == 1
        assert obs.counter("kernels/cache/disk_write").value == 1

        with collecting() as obs:
            second = KernelRegistry(core, disk=KernelDiskCache(tmp_path))
            k2 = second.ftimm(6, 96, 48)
        assert obs.counter("kernels/cache/disk_hit").value == 1
        assert k2.cycles == k1.cycles
        rng = np.random.default_rng(1)
        a = rng.standard_normal((6, 48)).astype(np.float32)
        b = rng.standard_normal((48, 96)).astype(np.float32)
        c1 = rng.standard_normal((6, 96)).astype(np.float32)
        c2 = c1.copy()
        k1.apply_isa(a, b, c1)
        k2.apply_isa(a, b, c2)
        assert np.array_equal(c1, c2)

    def test_corrupt_entry_regenerated(self, tmp_path, core):
        from repro.kernels.registry import KernelDiskCache, KernelRegistry
        from repro.kernels.serialize import KERNEL_FORMAT
        from repro.obs import collecting

        cache = KernelDiskCache(tmp_path)
        key = KernelDiskCache.key(
            "ftimm", {"m_s": 6, "n_a": 96, "k_a": 48, "dtype": "f32"}, core
        )
        cache.root.mkdir(parents=True)
        path = cache.root / f"{key}.json"
        path.write_text("{ this is not json")
        with collecting() as obs:
            KernelRegistry(core, disk=cache).ftimm(6, 96, 48)
        assert obs.counter("kernels/cache/disk_miss").value == 1
        assert obs.counter("kernels/cache/disk_write").value == 1
        # the corrupt entry was replaced by a fresh serialization
        assert json.loads(path.read_text())["format"] == KERNEL_FORMAT

    def test_version_stamped_directory(self, tmp_path):
        from repro.kernels.generator import GENERATOR_VERSION
        from repro.kernels.registry import KernelDiskCache
        from repro.kernels.serialize import KERNEL_FORMAT

        cache = KernelDiskCache(tmp_path)
        assert cache.root == tmp_path / f"v{GENERATOR_VERSION}-f{KERNEL_FORMAT}"

    def test_key_separates_kind_params_core(self, core):
        import dataclasses

        from repro.kernels.registry import KernelDiskCache

        params = {"m_s": 6, "n_a": 96, "k_a": 48, "dtype": "f32"}
        base = KernelDiskCache.key("ftimm", params, core)
        assert KernelDiskCache.key("tgemm", params, core) != base
        assert KernelDiskCache.key("ftimm", {**params, "k_a": 49}, core) != base
        other = dataclasses.replace(core, n_vector_fmac=core.n_vector_fmac + 1)
        assert KernelDiskCache.key("ftimm", params, other) != base
        # but equal inputs give the identical digest (stable addressing)
        assert KernelDiskCache.key("ftimm", dict(params), core) == base
