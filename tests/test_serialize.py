"""Kernel program serialization round-trips."""

import json

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa.interp import run_program
from repro.isa.scheduler import schedule_loop
from repro.kernels.serialize import (
    instr_from_dict,
    instr_to_dict,
    program_from_dict,
    program_to_dict,
)


class TestInstrRoundTrip:
    def test_all_body_instrs_round_trip(self, registry):
        kern = registry.ftimm(6, 64, 32)
        for block in kern.program.blocks:
            for instr in [*block.setup, *block.body, *block.teardown]:
                restored = instr_from_dict(instr_to_dict(instr))
                assert restored == instr

    def test_json_compatible(self, registry):
        kern = registry.ftimm(8, 96, 16)
        text = json.dumps(program_to_dict(kern.program))
        assert "VFMULAS32" in text

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IsaError):
            instr_from_dict({"op": "FROBNICATE"})


class TestProgramRoundTrip:
    def test_structure_preserved(self, registry):
        kern = registry.ftimm(14, 32, 64)
        restored = program_from_dict(program_to_dict(kern.program))
        assert len(restored.blocks) == len(kern.program.blocks)
        for old, new in zip(kern.program.blocks, restored.blocks):
            assert old.trip == new.trip
            assert old.rows == new.rows
            assert old.body == new.body
        assert restored.meta["k_u"] == kern.program.meta["k_u"]

    def test_restored_program_schedules_identically(self, registry, core):
        kern = registry.ftimm(6, 64, 64)
        restored = program_from_dict(program_to_dict(kern.program))
        ii_new = schedule_loop(restored.blocks[0].body, core.latencies).ii
        assert ii_new == kern.ii

    def test_restored_program_interprets_identically(self, registry):
        kern = registry.ftimm(4, 48, 8)
        restored = program_from_dict(program_to_dict(kern.program))
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, kern.compute_k)).astype(np.float32)
        b = rng.standard_normal((kern.compute_k, kern.compute_n)).astype(np.float32)
        c1 = np.zeros((4, kern.compute_n), np.float32)
        c2 = c1.copy()
        run_program(kern.program, {"A": a, "B": b.copy(), "C": c1})
        run_program(restored, {"A": a, "B": b.copy(), "C": c2})
        np.testing.assert_array_equal(c1, c2)

    def test_f64_program_round_trips(self, registry):
        kern = registry.ftimm(6, 32, 16, dtype="f64")
        restored = program_from_dict(program_to_dict(kern.program))
        assert restored.meta["dtype"] == "f64"
        assert restored.blocks[0].body == kern.program.blocks[0].body

    def test_registers_used_stable(self, registry):
        kern = registry.ftimm(10, 96, 32)
        restored = program_from_dict(program_to_dict(kern.program))
        assert restored.registers_used() == kern.program.registers_used()
