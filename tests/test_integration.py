"""Cross-cutting integration scenarios.

These tests exercise relationships *between* components that no unit test
sees: strategy equivalence, accumulation semantics, plan determinism,
physical-consistency checks of the timing models.
"""

import numpy as np
import pytest

from repro.core.blocking import MPlan, adjust_m_plan
from repro.core.ftimm import ftimm_gemm, tgemm_gemm
from repro.core.parallel_k import build_parallel_k
from repro.core.parallel_m import build_parallel_m
from repro.core.shapes import GemmShape
from repro.core.tgemm import build_tgemm
from repro.executor.functional import run_functional
from repro.executor.timed import run_timed

from conftest import assert_gemm_close, make_operands


class TestStrategyEquivalence:
    """All three algorithms compute the same mathematics."""

    @pytest.mark.parametrize("m,n,k", [(160, 32, 300), (96, 48, 96), (33, 7, 131)])
    def test_three_drivers_agree(self, cluster, registry, m, n, k):
        shape = GemmShape(m, n, k)
        results = []
        for builder in (build_tgemm, build_parallel_m, build_parallel_k):
            data, ref = make_operands(shape, seed=9)
            run_functional(builder(shape, cluster, data=data, registry=registry))
            assert_gemm_close(data.c, ref, k)
            results.append(data.c.copy())
        np.testing.assert_allclose(results[0], results[1], rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(results[0], results[2], rtol=1e-4, atol=1e-4)

    def test_forced_strategies_agree_through_api(self):
        shape = GemmShape(600, 32, 600)
        outs = {}
        for strategy in ("m", "k"):
            data, ref = make_operands(shape, seed=10)
            ftimm_gemm(
                shape.m, shape.n, shape.k,
                a=data.a, b=data.b, c=data.c,
                force_strategy=strategy, timing="none",
            )
            assert_gemm_close(data.c, ref, shape.k)
            outs[strategy] = data.c


class TestAccumulationSemantics:
    def test_two_calls_accumulate_twice(self):
        shape = GemmShape(200, 16, 64)
        data, _ref = make_operands(shape, seed=11)
        c0 = data.c.copy()
        for _ in range(2):
            ftimm_gemm(
                shape.m, shape.n, shape.k,
                a=data.a, b=data.b, c=data.c, timing="none",
            )
        expected = (
            c0.astype(np.float64)
            + 2.0 * (data.a.astype(np.float64) @ data.b.astype(np.float64))
        ).astype(np.float32)
        np.testing.assert_allclose(data.c, expected, rtol=1e-3, atol=1e-3)

    def test_zero_c_gives_pure_product(self):
        shape = GemmShape(100, 32, 50)
        data, _ = make_operands(shape, seed=12)
        data.c[:] = 0.0
        tgemm_gemm(shape.m, shape.n, shape.k, a=data.a, b=data.b, c=data.c,
                   timing="none")
        assert_gemm_close(data.c, (data.a @ data.b), shape.k)

    def test_operands_a_b_never_mutated(self):
        shape = GemmShape(100, 32, 50)
        data, _ = make_operands(shape, seed=13)
        a0, b0 = data.a.copy(), data.b.copy()
        ftimm_gemm(shape.m, shape.n, shape.k, a=data.a, b=data.b, c=data.c,
                   timing="none")
        np.testing.assert_array_equal(data.a, a0)
        np.testing.assert_array_equal(data.b, b0)


class TestPlanDeterminism:
    def test_same_inputs_same_plan(self, cluster, registry):
        shape = GemmShape(1000, 32, 500)
        ex1 = build_parallel_m(shape, cluster, registry=registry)
        ex2 = build_parallel_m(shape, cluster, registry=registry)
        assert ex1.n_ops == ex2.n_ops
        for ops1, ops2 in zip(ex1.core_ops, ex2.core_ops):
            for o1, o2 in zip(ops1, ops2):
                assert o1.kind == o2.kind
                assert o1.deps == o2.deps
                assert o1.cycles == o2.cycles

    def test_same_inputs_same_time(self):
        t1 = ftimm_gemm(4096, 32, 256, timing="des").seconds
        t2 = ftimm_gemm(4096, 32, 256, timing="des").seconds
        assert t1 == t2


class TestPhysicalConsistency:
    """Timing results must obey physics: bounds from bandwidth and peak."""

    @pytest.mark.parametrize(
        "m,n,k", [(8192, 32, 512), (2048, 96, 2048), (32, 32, 32768)]
    )
    def test_never_beats_compute_peak(self, cluster, m, n, k):
        r = ftimm_gemm(m, n, k, timing="des")
        assert r.gflops * 1e9 <= cluster.peak_flops

    @pytest.mark.parametrize("m,n,k", [(8192, 32, 512), (32, 32, 32768)])
    def test_never_beats_memory_bound(self, cluster, m, n, k):
        """Useful GFLOPS cannot exceed AI x achieved DDR bandwidth."""
        shape = GemmShape(m, n, k)
        r = ftimm_gemm(m, n, k, timing="des")
        achieved = cluster.ddr_bandwidth * cluster.dma.ddr_efficiency
        bound = shape.arithmetic_intensity * achieved
        assert r.gflops * 1e9 <= bound * 1.001

    def test_des_time_at_least_kernel_critical_path(self, cluster, registry):
        shape = GemmShape(4096, 32, 256)
        plan = adjust_m_plan(MPlan(), shape, cluster)
        ex = build_parallel_m(shape, cluster, plan=plan, adjust=False,
                              registry=registry)
        r = run_timed(ex)
        busiest = max(ex.kernel_cycles_by_core) / cluster.core.clock_hz
        assert r.seconds >= busiest

    def test_single_core_slower_than_eight(self):
        r1 = ftimm_gemm(20480, 32, 512, cores=1, timing="analytic")
        r8 = ftimm_gemm(20480, 32, 512, cores=8, timing="analytic")
        assert r1.seconds > r8.seconds

    def test_more_work_takes_longer(self):
        small = ftimm_gemm(8192, 32, 256, timing="analytic").seconds
        large = ftimm_gemm(32768, 32, 256, timing="analytic").seconds
        assert large > 2 * small


class TestKernelReuse:
    def test_sweep_reuses_generated_kernels(self, core):
        """A GEMM sweep over M must not regenerate kernels per call."""
        from repro.kernels.registry import KernelRegistry

        registry = KernelRegistry(core)
        cluster_shapes = [(4096, 32, 512), (8192, 32, 512), (12288, 32, 512)]
        from repro.core.parallel_m import build_parallel_m as build
        from repro.hw.config import default_machine

        cluster = default_machine().cluster
        for m, n, k in cluster_shapes:
            build(GemmShape(m, n, k), cluster, registry=registry)
        # same adjusted blocks across the sweep -> a handful of kernels
        assert registry.generated_count <= 6
