"""ISA definitions: opcodes, operand validation, affine memory refs."""

import pytest

from repro.errors import IsaError
from repro.isa.instructions import (
    Affine,
    Instr,
    MemRef,
    OP_TABLE,
    Opcode,
    fma,
)
from repro.isa.units import UnitClass


class TestOpTable:
    def test_every_opcode_has_spec(self):
        for op in Opcode:
            assert op in OP_TABLE

    def test_loads_and_stores_flagged(self):
        assert OP_TABLE[Opcode.VLDW].is_load
        assert OP_TABLE[Opcode.VSTW].is_store
        assert not OP_TABLE[Opcode.VFMULAS32].is_load

    def test_broadcasts_on_single_unit(self):
        """The SPU can move at most 2 scalars/cycle into vectors: both
        broadcast forms must occupy the same single-instance slot."""
        assert OP_TABLE[Opcode.SVBCAST].unit is UnitClass.SFMAC2
        assert OP_TABLE[Opcode.SVBCAST2].unit is UnitClass.SFMAC2

    def test_fma_on_vector_fmac(self):
        assert OP_TABLE[Opcode.VFMULAS32].unit is UnitClass.VFMAC

    def test_mem_lanes(self):
        assert OP_TABLE[Opcode.VLDW].mem_lanes == 32
        assert OP_TABLE[Opcode.VLDDW].mem_lanes == 64
        assert OP_TABLE[Opcode.SLDW].mem_lanes == 2
        assert OP_TABLE[Opcode.SLDH].mem_lanes == 1


class TestAffine:
    def test_constant(self):
        assert Affine(5).at(100) == 5

    def test_stepping(self):
        a = Affine(3, 2)
        assert [a.at(i) for i in range(3)] == [3, 5, 7]

    def test_memref_at(self):
        ref = MemRef("B", Affine(1, 2), Affine(32))
        assert ref.at(0) == (1, 32)
        assert ref.at(4) == (9, 32)


class TestInstrValidation:
    def test_wrong_dst_count_rejected(self):
        with pytest.raises(IsaError):
            Instr(Opcode.SVBCAST2, dsts=("v0",), srcs=("s0", "s1"))

    def test_wrong_src_count_rejected(self):
        with pytest.raises(IsaError):
            Instr(Opcode.VADDS32, dsts=("v0",), srcs=("v1",))

    def test_load_requires_mem(self):
        with pytest.raises(IsaError):
            Instr(Opcode.VLDW, dsts=("v0",))

    def test_non_mem_op_rejects_mem(self):
        with pytest.raises(IsaError):
            Instr(
                Opcode.SVBCAST,
                dsts=("v0",),
                srcs=("s0",),
                mem=MemRef("A", Affine(0), Affine(0)),
            )

    def test_fma_helper_reads_accumulator(self):
        instr = fma("vc", "va", "vb")
        assert instr.reads == ("vc", "va", "vb")
        assert instr.writes == ("vc",)

    def test_latency_lookup(self, core):
        instr = fma("vc", "va", "vb")
        assert instr.latency(core.latencies) == core.latencies.t_fma


class TestRender:
    def test_fma_renders_conventionally(self):
        assert fma("vc0", "va1", "vb2").render() == "VFMULAS32 vc0, va1, vb2"

    def test_load_renders_memref(self):
        instr = Instr(
            Opcode.VLDW,
            dsts=("v0",),
            mem=MemRef("B", Affine(0, 2), Affine(32)),
        )
        assert "B[0+2*i][32]" in instr.render()

    def test_vmovi_renders_immediate(self):
        instr = Instr(Opcode.VMOVI, dsts=("v0",), imm=0.0)
        assert "#0" in instr.render()

    def test_sbr_renders_bare(self):
        assert Instr(Opcode.SBR).render() == "SBR"
