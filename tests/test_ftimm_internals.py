"""Internals of the top-level entry point: mode selection, op estimation,
result plumbing."""

import pytest

from repro.core.ftimm import _DES_OP_LIMIT, _estimate_ops, ftimm_gemm, tgemm_gemm
from repro.core.shapes import GemmShape
from repro.core.tuner import tune
from repro.hw.config import default_machine


class TestOpEstimation:
    def test_estimate_tracks_real_op_count(self, cluster, registry):
        """The auto-mode heuristic must be the right order of magnitude."""
        from repro.core.ftimm import _lower

        for m, n, k in [(2000, 32, 512), (32, 32, 16384), (1024, 96, 1024)]:
            shape = GemmShape(m, n, k)
            decision = tune(shape, cluster)
            estimate = _estimate_ops(shape, decision)
            actual = _lower(shape, cluster, decision, None, registry).n_ops
            assert actual / 4 <= estimate <= actual * 4, (m, n, k)

    def test_auto_boundary_consistency(self):
        """auto == des below the limit, analytic above it."""
        small = ftimm_gemm(2000, 32, 64, timing="auto")
        assert small.timing_mode == "des"
        huge = ftimm_gemm(2**21, 32, 32, timing="auto")
        assert huge.timing_mode == "analytic"

    def test_limit_is_sane(self):
        assert 10_000 <= _DES_OP_LIMIT <= 1_000_000


class TestResultPlumbing:
    def test_decision_attached(self):
        result = ftimm_gemm(4096, 32, 64, timing="analytic")
        assert result.decision.strategy == result.strategy
        assert result.decision.plan is not None

    def test_functional_report_attached_only_with_data(self):
        import numpy as np

        r1 = ftimm_gemm(256, 16, 32, timing="analytic")
        assert r1.functional is None
        a = np.zeros((256, 32), np.float32)
        b = np.zeros((32, 16), np.float32)
        c = np.zeros((256, 16), np.float32)
        r2 = ftimm_gemm(256, 16, 32, a=a, b=b, c=c, timing="analytic")
        assert r2.functional is not None
        assert r2.functional.flops == GemmShape(256, 16, 32).flops

    def test_tgemm_result_strategy_label(self):
        assert tgemm_gemm(512, 32, 64, timing="analytic").strategy == "tgemm"

    def test_machine_override(self):
        machine = default_machine()
        result = ftimm_gemm(4096, 32, 64, machine=machine, timing="analytic")
        assert result.n_cores == machine.cluster.n_cores

    def test_timing_object_consistency(self):
        result = ftimm_gemm(4096, 32, 64, timing="analytic")
        assert result.gflops == pytest.approx(result.timing.gflops)
        assert result.efficiency == pytest.approx(result.timing.efficiency)
        assert result.timing.strategy.startswith("ftimm")


class TestTunerDtypeInteraction:
    def test_f64_decision_carries_f64_plan(self, cluster):
        decision = tune(GemmShape(4096, 32, 64), cluster, dtype="f64")
        assert decision.plan.dtype == "f64"
        assert decision.plan.n_a <= 48

    def test_f64_k_strategy_plan(self, cluster):
        decision = tune(GemmShape(32, 32, 2**20), cluster, dtype="f64")
        assert decision.strategy == "k"
        assert decision.k_plan.dtype == "f64"
        assert decision.k_plan.am_bytes() <= cluster.core.am_bytes
