"""Shape taxonomy (Section III-A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.shapes import GemmShape, GemmType
from repro.errors import ShapeError


class TestClassification:
    @pytest.mark.parametrize(
        "m,n,k",
        [(65536, 32, 32), (2**22, 32, 32), (20480, 96, 96), (65536, 8, 8)],
    )
    def test_type1_tall_skinny_times_small(self, m, n, k):
        assert GemmShape(m, n, k).classify() is GemmType.TALL_SKINNY_TIMES_SMALL

    @pytest.mark.parametrize(
        "m,n,k", [(32, 32, 65536), (32, 32, 2**22), (96, 96, 20480), (8, 8, 65536)]
    )
    def test_type2_skinny_tall(self, m, n, k):
        assert GemmShape(m, n, k).classify() is GemmType.SKINNY_TALL_TIMES_TALL

    @pytest.mark.parametrize(
        "m,n,k", [(20480, 32, 20480), (16384, 96, 20480), (4096, 8, 4096)]
    )
    def test_type3_regular_times_tall_skinny(self, m, n, k):
        assert GemmShape(m, n, k).classify() is GemmType.REGULAR_TIMES_TALL_SKINNY

    @pytest.mark.parametrize(
        "m,n,k", [(4096, 4096, 4096), (512, 512, 512), (20480, 128, 20480), (64, 64, 64)]
    )
    def test_regular(self, m, n, k):
        assert GemmShape(m, n, k).classify() is GemmType.REGULAR

    def test_is_irregular(self):
        assert GemmShape(65536, 32, 32).is_irregular
        assert not GemmShape(512, 512, 512).is_irregular


class TestProperties:
    def test_flops(self):
        assert GemmShape(2, 3, 4).flops == 48

    def test_bytes(self):
        s = GemmShape(10, 20, 30)
        assert s.a_bytes == 4 * 300
        assert s.b_bytes == 4 * 600
        assert s.c_bytes == 4 * 200
        assert s.total_bytes == s.a_bytes + s.b_bytes + 2 * s.c_bytes

    def test_arithmetic_intensity(self):
        s = GemmShape(1024, 32, 32)
        assert s.arithmetic_intensity == pytest.approx(
            s.flops / s.total_bytes
        )

    def test_str(self):
        assert str(GemmShape(1, 2, 3)) == "1x2x3"

    @pytest.mark.parametrize("dims", [(0, 1, 1), (1, 0, 1), (1, 1, 0), (-5, 1, 1)])
    def test_invalid_dims_rejected(self, dims):
        with pytest.raises(ShapeError):
            GemmShape(*dims)


@given(
    m=st.integers(1, 10**7),
    n=st.integers(1, 512),
    k=st.integers(1, 10**7),
)
def test_classification_total_and_consistent(m, n, k):
    """Every positive shape classifies, and wide-N is always regular."""
    shape = GemmShape(m, n, k)
    kind = shape.classify()
    assert isinstance(kind, GemmType)
    if n > 96:
        assert kind is GemmType.REGULAR
    assert shape.flops == 2 * m * n * k
