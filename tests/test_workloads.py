"""Workloads: K-means, im2col convolution, FEM batches — each routed
through the simulated ftIMM and checked against plain NumPy."""

import numpy as np
import pytest

from repro.core.ftimm import ftimm_gemm
from repro.core.shapes import GemmType
from repro.workloads.convnets import (
    ConvLayer,
    RESNET18_LAYERS,
    VGG16_LAYERS,
    conv2d_direct,
    conv2d_im2col,
    im2col,
)
from repro.workloads.fem import (
    FemOperator,
    STANDARD_OPERATORS,
    batched_interpolate,
    lagrange_basis_1d,
)
from repro.workloads.generators import random_operands, reference_result
from repro.workloads.kmeans import (
    blob_dataset,
    kmeans_gemm_shape,
    lloyd_kmeans,
    numpy_gemm,
)


def ftimm_gemm_fn(a, b, c):
    """GemmFn adapter running the simulated ftIMM functionally."""
    m, k = a.shape
    n = b.shape[1]
    ftimm_gemm(m, n, k, a=a, b=b, c=c, timing="none")


class TestKMeans:
    def test_shapes_are_type1_irregular(self):
        shape = kmeans_gemm_shape(100_000, 16, 8)
        assert shape.classify() is GemmType.TALL_SKINNY_TIMES_SMALL

    def test_clusters_recovered_on_blobs(self):
        x, _true = blob_dataset(600, 8, 4, seed=3)
        result = lloyd_kmeans(x, 4, seed=3)
        # Lloyd may hit a local optimum, but must beat the single-cluster
        # inertia by a wide margin on well-separated blobs
        single = float(((x - x.mean(axis=0)) ** 2).sum())
        assert result.inertia < 0.5 * single
        assert len(np.unique(result.labels)) == 4

    def test_ftimm_and_numpy_agree(self):
        x, _ = blob_dataset(500, 8, 4, seed=5)
        r_np = lloyd_kmeans(x, 4, gemm=numpy_gemm, seed=5)
        r_ft = lloyd_kmeans(x, 4, gemm=ftimm_gemm_fn, seed=5)
        np.testing.assert_array_equal(r_np.labels, r_ft.labels)
        np.testing.assert_allclose(r_np.centroids, r_ft.centroids, rtol=1e-4)

    def test_gemm_shapes_recorded(self):
        x, _ = blob_dataset(300, 8, 4)
        result = lloyd_kmeans(x, 4)
        assert result.gemm_shapes
        assert all(s.m == 300 and s.n == 4 and s.k == 8 for s in result.gemm_shapes)

    def test_converges_before_max_iter(self):
        x, _ = blob_dataset(400, 4, 3, seed=1)
        result = lloyd_kmeans(x, 3, max_iter=50, seed=1)
        assert result.iterations < 50


class TestConvnets:
    def test_first_layers_are_irregular(self):
        shape = VGG16_LAYERS[0].gemm_shape(batch=1)
        assert shape.m > 10_000 and shape.n <= 96
        assert shape.classify() is GemmType.TALL_SKINNY_TIMES_SMALL

    def test_deep_layers_grow_k(self):
        first = VGG16_LAYERS[0].gemm_shape()
        last = VGG16_LAYERS[-1].gemm_shape()
        assert last.k > first.k
        assert last.m < first.m

    def test_layer_tables_consistent(self):
        for layer in VGG16_LAYERS + RESNET18_LAYERS:
            assert layer.h_out > 0
            shape = layer.gemm_shape()
            assert shape.n == layer.c_out

    def test_im2col_shape(self):
        layer = ConvLayer("t", 3, 8, 8, 3, 1, 1)
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, layer)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_im2col_rejects_mismatched_input(self):
        layer = ConvLayer("t", 3, 8, 8, 3)
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 4, 8, 8), np.float32), layer)

    def test_conv_via_gemm_matches_direct(self):
        rng = np.random.default_rng(7)
        layer = ConvLayer("t", 3, 8, 10, 3, 1, 1)
        x = rng.standard_normal((2, 3, 10, 10)).astype(np.float32)
        w = rng.standard_normal((8, 3, 3, 3)).astype(np.float32)
        out_gemm = conv2d_im2col(x, w, layer)
        out_direct = conv2d_direct(x, w, layer)
        np.testing.assert_allclose(out_gemm, out_direct, rtol=1e-3, atol=1e-4)

    def test_conv_via_simulated_ftimm(self):
        rng = np.random.default_rng(8)
        layer = ConvLayer("t", 4, 16, 6, 3, 1, 1)
        x = rng.standard_normal((1, 4, 6, 6)).astype(np.float32)
        w = rng.standard_normal((16, 4, 3, 3)).astype(np.float32)
        out_ft = conv2d_im2col(x, w, layer, gemm=ftimm_gemm_fn)
        out_np = conv2d_im2col(x, w, layer)
        np.testing.assert_allclose(out_ft, out_np, rtol=1e-4, atol=1e-4)

    def test_strided_conv(self):
        rng = np.random.default_rng(9)
        layer = ConvLayer("t", 2, 4, 9, 3, 2, 1)
        x = rng.standard_normal((1, 2, 9, 9)).astype(np.float32)
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            conv2d_im2col(x, w, layer),
            conv2d_direct(x, w, layer),
            rtol=1e-3, atol=1e-4,
        )


class TestFem:
    def test_operator_shapes_are_tall_skinny(self):
        for op in STANDARD_OPERATORS:
            shape = op.gemm_shape()
            assert shape.m >= 100_000
            assert shape.n <= 96

    def test_interpolation_matches_numpy(self):
        rng = np.random.default_rng(2)
        dofs = rng.standard_normal((500, 4)).astype(np.float32)
        basis = rng.standard_normal((4, 6)).astype(np.float32)
        out = batched_interpolate(dofs, basis)
        np.testing.assert_allclose(out, dofs @ basis, rtol=1e-5)

    def test_interpolation_via_ftimm(self):
        rng = np.random.default_rng(3)
        dofs = rng.standard_normal((640, 8)).astype(np.float32)
        basis = rng.standard_normal((8, 24)).astype(np.float32)
        out = batched_interpolate(dofs, basis, gemm=ftimm_gemm_fn)
        np.testing.assert_allclose(out, dofs @ basis, rtol=1e-4, atol=1e-4)

    def test_lagrange_partition_of_unity(self):
        pts = np.linspace(0, 1, 11)
        basis = lagrange_basis_1d(3, pts)
        np.testing.assert_allclose(basis.sum(axis=0), 1.0, atol=1e-5)

    def test_lagrange_interpolates_nodes(self):
        nodes = np.linspace(0, 1, 4)
        basis = lagrange_basis_1d(3, nodes)
        np.testing.assert_allclose(basis, np.eye(4), atol=1e-5)

    def test_fem_operator_dataclass(self):
        op = FemOperator("x", 1000, 8, 27)
        assert op.gemm_shape().flops == 2 * 1000 * 27 * 8


class TestGenerators:
    def test_random_operands_shapes(self):
        from repro.core.shapes import GemmShape

        a, b, c = random_operands(GemmShape(10, 20, 30), seed=1)
        assert a.shape == (10, 30) and b.shape == (30, 20) and c.shape == (10, 20)
        assert a.dtype == np.float32

    def test_c_zero_option(self):
        from repro.core.shapes import GemmShape

        _a, _b, c = random_operands(GemmShape(4, 4, 4), c_zero=True)
        assert np.all(c == 0)

    def test_reference_result_float64_accumulation(self):
        from repro.core.shapes import GemmShape

        a, b, c = random_operands(GemmShape(8, 8, 8), seed=2)
        ref = reference_result(a, b, c)
        np.testing.assert_allclose(ref, c + a @ b, rtol=1e-5)
