"""Smoke tests for every experiment's CLI entry point (main()).

These catch render/chart crashes that ``run()``-only tests never exercise.
Only the fast experiments run their full main(); the heavy sweeps are
covered through ``run()`` elsewhere and via stubs here.
"""

import pytest

from repro.experiments import ext_fp64, ext_hetero, fig3, fig6, tables123


class TestFastMains:
    def test_fig3_main(self, capsys):
        fig3.main()
        out = capsys.readouterr().out
        assert "fig3a" in out and "fig3f" in out
        assert "|" in out  # charts rendered

    def test_tables_main(self, capsys):
        tables123.main()
        out = capsys.readouterr().out
        assert "table1" in out and "VFMULAS32" in out

    def test_fig6_main(self, capsys):
        fig6.main()
        out = capsys.readouterr().out
        assert "scalability" in out
        assert "forced K" in out

    def test_ext_fp64_main(self, capsys):
        ext_fp64.main()
        out = capsys.readouterr().out
        assert "ext_fp64_a" in out and "ext_fp64_gemm" in out

    def test_ext_hetero_main(self, capsys):
        ext_hetero.main()
        assert "co-execution" in capsys.readouterr().out


class TestKernelSweepHelpers:
    def test_fig3_custom_m_values(self):
        series = fig3.kernel_efficiency_sweep(96, 512, m_values=[4, 8])
        assert series.x == [4, 8]
        assert all(0 < y <= 100 for y in series.y)

    def test_fig3_panels_cover_paper(self):
        ids = [p[0] for p in fig3.PANELS]
        assert ids == ["fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f"]

    @pytest.mark.parametrize("n,k", [(96, 512), (32, 32)])
    def test_sweep_monotone_saturation(self, n, k):
        """Efficiency grows (then plateaus) with kernel rows — never a
        cliff upward after the plateau."""
        series = fig3.kernel_efficiency_sweep(n, k)
        peak_idx = series.y.index(max(series.y))
        rising = series.y[: peak_idx + 1]
        assert all(b >= a - 3.0 for a, b in zip(rising, rising[1:]))
